//! 2D Poisson multigrid benchmark (§6.1.5).
//!
//! Three building blocks — direct (band Cholesky), iterative
//! (Red-Black SOR), and recursive (multigrid) — with the autotuner
//! choosing, *at every recursion level*, whether to recurse further,
//! iterate, or solve directly, and how many relaxations to apply before
//! and after the coarse-grid correction. "It is this kind of trade-offs
//! that our variable accuracy auto-tuner excels at exploring."
//!
//! Accuracy metric: `log₁₀` of the ratio between the RMS residual of
//! the initial guess and of the final guess (the paper's accuracy
//! levels 10¹…10⁹ are these orders of magnitude).

use pb_config::Schema;
use pb_multigrid::{poisson2d, Grid2d};
use pb_runtime::parallel::{available_threads, parallel_engages, parallel_gen};
use pb_runtime::{ExecCtx, Transform};
use rand::rngs::SmallRng;

/// Maximum recursion depth with dedicated tunables; deeper levels
/// reuse the deepest set.
pub const MAX_LEVELS: usize = 8;

/// Per-level action choices.
pub const ACTION_NAMES: [&str; 3] = ["recurse", "sor_solve", "direct"];

/// The Poisson right-hand side (the unknown starts at zero).
#[derive(Debug, Clone, PartialEq)]
pub struct PoissonInput {
    /// Right-hand side grid (size `2^k − 1`).
    pub b: Grid2d,
}

/// Builds the per-level tunable schema shared by this benchmark and
/// the Helmholtz one.
fn add_level_tunables(s: &mut Schema) {
    for d in 0..MAX_LEVELS {
        s.add_choice_site(format!("level{d}_action"), ACTION_NAMES.len());
        s.add_accuracy_variable_with_default(format!("level{d}_pre"), 0, 6, 2);
        s.add_accuracy_variable_with_default(format!("level{d}_post"), 0, 6, 2);
        s.add_accuracy_variable_with_default(format!("level{d}_sor_iters"), 1, 200, 10);
    }
    s.add_accuracy_variable_with_default("cycles", 1, 64, 2);
    s.add_float_param("omega", 0.8, 1.95);
    s.add_cutoff("par_cutoff", 16, 1 << 16);
}

/// Virtual-cost units modelling the fixed overhead of dispatching one
/// smoother sweep to the work-stealing pool (same constant as the
/// clustering and bin-packing benchmarks, so `par_cutoff` exhibits the
/// same dispatch-vs-division tradeoff the real scheduler has).
const PAR_DISPATCH_COST: f64 = 512.0;

/// One Red-Black SOR sweep whose per-colour row updates split across
/// the work-stealing pool when the grid has at least `par_cutoff` rows
/// (the §5.2 parallel/sequential switch-over, tuned like the other
/// benchmarks' placement and assignment scans).
///
/// Same-colour points never read each other — their four neighbours
/// are all the opposite colour — so computing a colour's updates from
/// the pre-colour grid snapshot produces bitwise the values the
/// in-place sequential sweep writes; the two regimes differ only in
/// *virtual cost*, which models the schedule (work divided across the
/// pool's threads plus a dispatch overhead). The thread count is the
/// pool's cached budget, constant within a process, so sequential and
/// parallel evaluator modes stay bit-identical.
fn smooth(u: &mut Grid2d, b: &Grid2d, omega: f64, par_cutoff: usize, ctx: &mut ExecCtx<'_>) {
    let n = u.n();
    let work = (n * n) as f64 * 5.0;
    if !parallel_engages(n, par_cutoff) {
        poisson2d::sor_sweep(u, b, omega);
        ctx.charge(work);
        ctx.event("relax");
        return;
    }
    for color in 0..2usize {
        let grid: &Grid2d = u;
        let rows: Vec<Vec<f64>> = parallel_gen(n, par_cutoff, |i| {
            (0..n)
                .filter(|j| (i + j) % 2 == color)
                .map(|j| {
                    let nb = grid.get_bc(i as isize - 1, j as isize)
                        + grid.get_bc(i as isize + 1, j as isize)
                        + grid.get_bc(i as isize, j as isize - 1)
                        + grid.get_bc(i as isize, j as isize + 1);
                    let gs = (b.get(i, j) + nb) / 4.0;
                    let old = grid.get(i, j);
                    old + omega * (gs - old)
                })
                .collect()
        });
        for (i, row) in rows.into_iter().enumerate() {
            for (slot, j) in (0..n).filter(|j| (i + j) % 2 == color).enumerate() {
                u.set(i, j, row[slot]);
            }
        }
    }
    ctx.charge(work / available_threads() as f64 + PAR_DISPATCH_COST);
    ctx.event("relax");
}

/// The 2D Poisson variable-accuracy transform.
#[derive(Debug, Clone, Copy, Default)]
pub struct Poisson2d;

impl Poisson2d {
    fn solve_level(
        &self,
        b: &Grid2d,
        depth: usize,
        par_cutoff: usize,
        ctx: &mut ExecCtx<'_>,
    ) -> Grid2d {
        let n = b.n();
        let d = depth.min(MAX_LEVELS - 1);
        let omega = ctx.float_param("omega").expect("schema declares omega");
        ctx.enter(format!("n{n}"));

        // Tiny grids always go direct; grids that cannot be coarsened
        // cannot recurse.
        let action = if n <= 3 {
            2
        } else {
            ctx.with_size(n as u64, |ctx| {
                ctx.choice(&format!("level{d}_action")).expect("schema")
            })
        };

        let out = match action {
            2 => {
                // Direct band Cholesky: O(n² · bandwidth²) = O(n⁴).
                ctx.charge((n as f64).powi(4));
                ctx.event("direct");
                poisson2d::direct_solve(b)
            }
            1 => {
                let iters = ctx
                    .for_enough(&format!("level{d}_sor_iters"))
                    .expect("schema");
                let mut u = Grid2d::zeros(n);
                for _ in 0..iters {
                    smooth(&mut u, b, omega, par_cutoff, ctx);
                }
                u
            }
            _ => {
                let pre = ctx.for_enough(&format!("level{d}_pre")).expect("schema");
                let post = ctx.for_enough(&format!("level{d}_post")).expect("schema");
                let mut u = Grid2d::zeros(n);
                for _ in 0..pre {
                    smooth(&mut u, b, omega, par_cutoff, ctx);
                }
                let r = poisson2d::residual(&u, b);
                ctx.charge((n * n) as f64 * 6.0);
                let mut rc = poisson2d::restrict(&r);
                for v in rc.as_mut_slice() {
                    *v *= 4.0; // coarse-grid h² rescaling
                }
                let ec = self.solve_level(&rc, depth + 1, par_cutoff, ctx);
                let ef = poisson2d::prolong(&ec);
                ctx.charge((n * n) as f64 * 2.0);
                poisson2d::add_correction(&mut u, &ef);
                for _ in 0..post {
                    smooth(&mut u, b, omega, par_cutoff, ctx);
                }
                u
            }
        };
        ctx.exit();
        out
    }
}

impl Transform for Poisson2d {
    type Input = PoissonInput;
    type Output = Grid2d;

    fn name(&self) -> &str {
        "poisson2d"
    }

    fn schema(&self) -> Schema {
        let mut s = Schema::new("poisson2d");
        add_level_tunables(&mut s);
        s
    }

    fn generate_input(&self, n: u64, rng: &mut SmallRng) -> PoissonInput {
        let size = Grid2d::round_up_size(n.max(1) as usize);
        PoissonInput {
            b: Grid2d::random_uniform(size, -1.0, 1.0, rng),
        }
    }

    fn execute(&self, input: &PoissonInput, ctx: &mut ExecCtx<'_>) -> Grid2d {
        let cycles = ctx.for_enough("cycles").expect("schema declares cycles");
        let par_cutoff = ctx.param("par_cutoff").expect("schema").max(1) as usize;
        let n = input.b.n();
        let mut u = Grid2d::zeros(n);
        for _ in 0..cycles {
            // Each "cycle" solves the residual equation and corrects,
            // so repeated cycles compound the per-cycle reduction.
            let r = poisson2d::residual(&u, &input.b);
            ctx.charge((n * n) as f64 * 6.0);
            let e = self.solve_level(&r, 0, par_cutoff, ctx);
            poisson2d::add_correction(&mut u, &e);
        }
        u
    }

    fn accuracy(&self, input: &PoissonInput, output: &Grid2d) -> f64 {
        let initial = input.b.rms().max(f64::MIN_POSITIVE);
        let after = poisson2d::residual(output, &input.b).rms();
        if after <= 0.0 {
            return 16.0; // solved to the bits: better than any bin
        }
        (initial / after).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_config::{Config, DecisionTree, Value};

    fn config_with(schema: &Schema, edits: &[(&str, Value)]) -> Config {
        let mut c = schema.default_config();
        for (name, v) in edits {
            c.set_by_name(schema, name, v.clone()).unwrap();
        }
        c
    }

    fn accuracy_of(config: &Config, schema: &Schema, n: u64, seed: u64) -> f64 {
        let t = Poisson2d;
        let mut rng = {
            use rand::SeedableRng;
            SmallRng::seed_from_u64(seed)
        };
        let input = t.generate_input(n, &mut rng);
        let mut ctx = ExecCtx::new(schema, config, n, seed);
        let out = t.execute(&input, &mut ctx);
        t.accuracy(&input, &out)
    }

    #[test]
    fn direct_everywhere_solves_exactly() {
        let t = Poisson2d;
        let schema = t.schema();
        let mut edits: Vec<(String, Value)> = Vec::new();
        for d in 0..MAX_LEVELS {
            edits.push((
                format!("level{d}_action"),
                Value::Tree(DecisionTree::single(2)),
            ));
        }
        let edits_ref: Vec<(&str, Value)> =
            edits.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
        let config = config_with(&schema, &edits_ref);
        let acc = accuracy_of(&config, &schema, 15, 1);
        assert!(acc > 9.0, "direct solve reaches machine precision: {acc}");
    }

    #[test]
    fn more_cycles_give_more_accuracy() {
        let t = Poisson2d;
        let schema = t.schema();
        let mut base: Vec<(String, Value)> = Vec::new();
        for d in 0..MAX_LEVELS {
            base.push((format!("level{d}_pre"), Value::Int(2)));
            base.push((format!("level{d}_post"), Value::Int(2)));
        }
        for (cycles, min_acc) in [(1, 0.5), (4, 2.0)] {
            let mut edits = base.clone();
            edits.push(("cycles".to_string(), Value::Int(cycles)));
            let edits_ref: Vec<(&str, Value)> =
                edits.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
            let config = config_with(&schema, &edits_ref);
            let acc = accuracy_of(&config, &schema, 31, 2);
            assert!(acc > min_acc, "cycles={cycles}: accuracy {acc}");
        }
    }

    #[test]
    fn sor_only_is_weaker_than_multigrid_for_same_budget() {
        let t = Poisson2d;
        let schema = t.schema();
        // SOR-only at the top level: 30 sweeps.
        let sor = config_with(
            &schema,
            &[
                ("level0_action", Value::Tree(DecisionTree::single(1))),
                ("level0_sor_iters", Value::Int(30)),
            ],
        );
        // One V-cycle with 2+2 sweeps per level.
        let mut edits: Vec<(String, Value)> = Vec::new();
        for d in 0..MAX_LEVELS {
            edits.push((format!("level{d}_pre"), Value::Int(2)));
            edits.push((format!("level{d}_post"), Value::Int(2)));
        }
        let edits_ref: Vec<(&str, Value)> =
            edits.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
        let mg = config_with(&schema, &edits_ref);
        let acc_sor = accuracy_of(&sor, &schema, 31, 3);
        let acc_mg = accuracy_of(&mg, &schema, 31, 3);
        assert!(
            acc_mg > acc_sor,
            "multigrid ({acc_mg}) should beat plain SOR ({acc_sor})"
        );
    }

    #[test]
    fn trace_records_cycle_shape() {
        let t = Poisson2d;
        let schema = t.schema();
        let mut edits: Vec<(String, Value)> = vec![("cycles".to_string(), Value::Int(1))];
        for d in 0..MAX_LEVELS {
            edits.push((format!("level{d}_pre"), Value::Int(1)));
            edits.push((format!("level{d}_post"), Value::Int(1)));
        }
        let edits_ref: Vec<(&str, Value)> =
            edits.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
        let config = config_with(&schema, &edits_ref);
        let mut rng = {
            use rand::SeedableRng;
            SmallRng::seed_from_u64(4)
        };
        let input = t.generate_input(15, &mut rng);
        let mut ctx = ExecCtx::new(&schema, &config, 15, 0);
        ctx.enable_trace();
        let _ = t.execute(&input, &mut ctx);
        let tree = ctx.trace_tree();
        // Levels n15 -> n7 -> n3 (direct).
        assert_eq!(tree.depth(), 3);
        assert!(tree.count_points("relax") >= 4);
        assert_eq!(tree.count_points("direct"), 1);
    }

    #[test]
    fn par_cutoff_changes_schedule_not_results() {
        let t = Poisson2d;
        let schema = t.schema();
        let mut rng = {
            use rand::SeedableRng;
            SmallRng::seed_from_u64(6)
        };
        let input = t.generate_input(31, &mut rng);
        let mut outputs = Vec::new();
        // Always-parallel vs never-parallel smoother sweeps must agree
        // bit-for-bit on the solution: the cutoff tunes the scheduler,
        // not the algorithm (red-black points only read the opposite
        // colour).
        for cutoff in [16i64, 1 << 16] {
            let mut config = schema.default_config();
            config
                .set_by_name(&schema, "par_cutoff", Value::Int(cutoff))
                .unwrap();
            let mut ctx = ExecCtx::new(&schema, &config, 31, 9);
            let out = t.execute(&input, &mut ctx);
            outputs.push((out, ctx.virtual_cost()));
        }
        assert_eq!(outputs[0].0, outputs[1].0);
        // The virtual cost *sees* the schedule: a 31x31 sweep (4805
        // work units) well clears the dispatch overhead, so the
        // always-parallel run must be modelled cheaper on a
        // multi-thread pool and identical on one thread.
        if pb_runtime::parallel::available_threads() >= 2 {
            assert!(
                outputs[0].1 < outputs[1].1,
                "parallel schedule should cost less: {} vs {}",
                outputs[0].1,
                outputs[1].1
            );
        } else {
            assert_eq!(outputs[0].1, outputs[1].1);
        }
    }

    #[test]
    fn parallel_smoother_matches_sequential_sweep() {
        // `smooth` above the cutoff writes bitwise the grid
        // `poisson2d::sor_sweep` produces in place.
        let t = Poisson2d;
        let schema = t.schema();
        let config = schema.default_config();
        let mut rng = {
            use rand::SeedableRng;
            SmallRng::seed_from_u64(7)
        };
        let b = Grid2d::random_uniform(31, -1.0, 1.0, &mut rng);
        let mut seq = Grid2d::zeros(31);
        let mut par = Grid2d::zeros(31);
        for _ in 0..3 {
            poisson2d::sor_sweep(&mut seq, &b, 1.15);
            let mut ctx = ExecCtx::new(&schema, &config, 31, 0);
            smooth(&mut par, &b, 1.15, 1, &mut ctx);
        }
        for (s, p) in seq.as_slice().iter().zip(par.as_slice()) {
            assert_eq!(s.to_bits(), p.to_bits());
        }
    }

    #[test]
    fn input_sizes_round_up_to_multigrid_sizes() {
        let t = Poisson2d;
        let mut rng = {
            use rand::SeedableRng;
            SmallRng::seed_from_u64(5)
        };
        assert_eq!(t.generate_input(9, &mut rng).b.n(), 15);
        assert_eq!(t.generate_input(15, &mut rng).b.n(), 15);
        assert_eq!(t.generate_input(1, &mut rng).b.n(), 1);
    }
}
