//! The six variable-accuracy benchmarks from §6.1 of the paper,
//! implemented as [`pb_runtime::Transform`]s.
//!
//! | module | paper section | accuracy metric |
//! |--------|--------------|-----------------|
//! | [`binpacking`] | §6.1.1 | `2 − bins/OPT` (so larger = tighter packing) |
//! | [`clustering`] | §6.1.2 | `√(2n / Σ Dᵢ²)` |
//! | [`helmholtz`] | §6.1.3 | `log₁₀` RMS residual-reduction ratio |
//! | [`imagecompr`] | §6.1.4 | `log₁₀` RMS reconstruction-error ratio |
//! | [`poisson`] | §6.1.5 | `log₁₀` RMS residual-reduction ratio |
//! | [`precond`] | §6.1.6 | `log₁₀` RMS residual-reduction ratio |
//!
//! Every transform charges a deterministic virtual cost proportional to
//! the work it performs, so the autotuner can run in the reproducible
//! [`pb_runtime::CostModel::Virtual`] mode; wall-clock tuning works
//! unchanged.

// Index loops mirror the paper's pseudocode for these kernels.
#![allow(clippy::needless_range_loop)]

pub mod binpacking;
pub mod clustering;
pub mod helmholtz;
pub mod imagecompr;
pub mod poisson;
pub mod precond;

pub use binpacking::BinPacking;
pub use clustering::Clustering;
pub use helmholtz::Helmholtz3d;
pub use imagecompr::ImageCompression;
pub use poisson::Poisson2d;
pub use precond::Preconditioner;
