//! Preconditioned iterative solver benchmark (§6.1.6).
//!
//! Solves `A·x = b` by conjugate gradients with three preconditioner
//! choices: none (plain CG), the Jacobi preconditioner
//! `P = diag(A)`, and a polynomial preconditioner `P⁻¹ = p(A)` built
//! from a truncated Neumann series. The iteration count is a
//! `for_enough` accuracy variable.
//!
//! The paper uses the discrete Poisson operator, whose diagonal is
//! constant — making Jacobi preconditioning a no-op scaling. To keep
//! the Jacobi choice meaningful we use the variable-coefficient
//! operator `a(x)·u − Δu` with `a ~ U(0, 4)` (documented in
//! DESIGN.md); the choice structure, accuracy metric, and trade-off
//! shape are unchanged.
//!
//! Accuracy metric: `log₁₀(rms(b − A·x_in) / rms(b − A·x_out))` with
//! `x_in = 0` (the paper's levels 0.0–3.0 are these orders of
//! magnitude).

use pb_config::Schema;
use pb_runtime::{ExecCtx, Transform};
use rand::rngs::SmallRng;
use rand::Rng;

/// Preconditioner choice indices.
pub const METHOD_NAMES: [&str; 3] = ["cg", "jacobi_pcg", "polynomial_pcg"];

/// A symmetric positive-definite operator `a(x)·u − Δu` on an `m × m`
/// grid (5-point stencil, zero Dirichlet boundary).
#[derive(Debug, Clone, PartialEq)]
pub struct SpdOperator {
    m: usize,
    /// Point coefficients `a ≥ 0` (variable diagonal).
    a: Vec<f64>,
}

impl SpdOperator {
    /// A random operator with `a ~ U(0, 4)`.
    pub fn random(m: usize, rng: &mut SmallRng) -> Self {
        SpdOperator {
            m,
            a: (0..m * m).map(|_| rng.gen_range(0.0..4.0)).collect(),
        }
    }

    /// Grid dimension per side.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of unknowns (`m²`).
    pub fn dim(&self) -> usize {
        self.m * self.m
    }

    /// Diagonal entry at linear index `i`.
    pub fn diag(&self, i: usize) -> f64 {
        self.a[i] + 4.0
    }

    /// `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        let m = self.m;
        assert_eq!(x.len(), m * m, "vector length mismatch");
        let mut y = vec![0.0; m * m];
        for i in 0..m {
            for j in 0..m {
                let idx = i * m + j;
                let mut v = (self.a[idx] + 4.0) * x[idx];
                if i > 0 {
                    v -= x[idx - m];
                }
                if i + 1 < m {
                    v -= x[idx + m];
                }
                if j > 0 {
                    v -= x[idx - 1];
                }
                if j + 1 < m {
                    v -= x[idx + 1];
                }
                y[idx] = v;
            }
        }
        y
    }

    /// RMS of the residual `b − A·x`.
    pub fn residual_rms(&self, x: &[f64], b: &[f64]) -> f64 {
        let ax = self.apply(x);
        let n = b.len() as f64;
        (b.iter()
            .zip(&ax)
            .map(|(bi, ai)| (bi - ai) * (bi - ai))
            .sum::<f64>()
            / n)
            .sqrt()
    }
}

/// One problem instance.
#[derive(Debug, Clone, PartialEq)]
pub struct PrecondInput {
    /// The operator.
    pub op: SpdOperator,
    /// Right-hand side.
    pub b: Vec<f64>,
}

/// Applies the selected preconditioner `z = P⁻¹·r`.
fn precondition(
    op: &SpdOperator,
    method: usize,
    poly_degree: usize,
    r: &[f64],
    ctx: &mut ExecCtx<'_>,
) -> Vec<f64> {
    match method {
        0 => r.to_vec(),
        1 => {
            // Jacobi: z = D⁻¹·r.
            ctx.charge(r.len() as f64);
            r.iter()
                .enumerate()
                .map(|(i, &ri)| ri / op.diag(i))
                .collect()
        }
        _ => {
            // Truncated Neumann series on the Jacobi splitting:
            // P⁻¹ = Σ_{j=0}^{deg} (I − D⁻¹A)^j · D⁻¹.
            let dinv_r: Vec<f64> = r
                .iter()
                .enumerate()
                .map(|(i, &ri)| ri / op.diag(i))
                .collect();
            let mut z = dinv_r.clone();
            let mut term = dinv_r;
            for _ in 0..poly_degree {
                // term ← (I − D⁻¹A)·term.
                let at = op.apply(&term);
                ctx.charge(5.0 * r.len() as f64);
                for (i, t) in term.iter_mut().enumerate() {
                    *t -= at[i] / op.diag(i);
                }
                for (zi, &ti) in z.iter_mut().zip(&term) {
                    *zi += ti;
                }
            }
            z
        }
    }
}

/// The preconditioned-solver variable-accuracy transform. The tuner's
/// size `n` is the grid dimension per side (`n²` unknowns).
#[derive(Debug, Clone, Copy, Default)]
pub struct Preconditioner;

impl Transform for Preconditioner {
    type Input = PrecondInput;
    type Output = Vec<f64>;

    fn name(&self) -> &str {
        "preconditioner"
    }

    fn schema(&self) -> Schema {
        let mut s = Schema::new("preconditioner");
        s.add_choice_site("method", METHOD_NAMES.len());
        s.add_accuracy_variable("iterations", 1, 2000);
        s.add_user_param("poly_degree", 1, 5);
        s
    }

    fn generate_input(&self, n: u64, rng: &mut SmallRng) -> PrecondInput {
        let m = n.max(2) as usize;
        let op = SpdOperator::random(m, rng);
        let b = (0..m * m).map(|_| rng.gen_range(-1.0..1.0)).collect();
        PrecondInput { op, b }
    }

    fn execute(&self, input: &PrecondInput, ctx: &mut ExecCtx<'_>) -> Vec<f64> {
        let op = &input.op;
        let b = &input.b;
        let dim = op.dim();
        let method = ctx.choice("method").expect("schema declares method");
        let max_iters = ctx.for_enough("iterations").expect("schema");
        let degree = ctx.param("poly_degree").expect("schema") as usize;
        ctx.event(METHOD_NAMES[method.min(2)]);

        // Preconditioned conjugate gradients from x = 0.
        let mut x = vec![0.0; dim];
        let mut r = b.clone();
        let mut z = precondition(op, method, degree, &r, ctx);
        let mut p = z.clone();
        let mut rz: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
        for _ in 0..max_iters {
            if rz.abs() < 1e-300 {
                break;
            }
            let ap = op.apply(&p);
            ctx.charge(5.0 * dim as f64);
            let pap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
            if pap <= 0.0 {
                break;
            }
            let alpha = rz / pap;
            for (xi, &pi) in x.iter_mut().zip(&p) {
                *xi += alpha * pi;
            }
            for (ri, &api) in r.iter_mut().zip(&ap) {
                *ri -= alpha * api;
            }
            z = precondition(op, method, degree, &r, ctx);
            let rz_new: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
            let beta = rz_new / rz;
            rz = rz_new;
            for (pi, &zi) in p.iter_mut().zip(&z) {
                *pi = zi + beta * *pi;
            }
            ctx.charge(4.0 * dim as f64);
        }
        x
    }

    fn accuracy(&self, input: &PrecondInput, output: &Vec<f64>) -> f64 {
        let n = input.b.len() as f64;
        let initial = (input.b.iter().map(|v| v * v).sum::<f64>() / n)
            .sqrt()
            .max(f64::MIN_POSITIVE);
        let after = input.op.residual_rms(output, &input.b);
        if after <= 0.0 {
            return 16.0;
        }
        (initial / after).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_config::{Config, DecisionTree, Value};
    use rand::SeedableRng;

    fn run(method: usize, iters: i64, n: u64, seed: u64) -> (f64, f64) {
        let t = Preconditioner;
        let schema = t.schema();
        let mut config: Config = schema.default_config();
        config
            .set_by_name(&schema, "method", Value::Tree(DecisionTree::single(method)))
            .unwrap();
        config
            .set_by_name(&schema, "iterations", Value::Int(iters))
            .unwrap();
        config
            .set_by_name(&schema, "poly_degree", Value::Int(3))
            .unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let input = t.generate_input(n, &mut rng);
        let mut ctx = ExecCtx::new(&schema, &config, n, 0);
        let out = t.execute(&input, &mut ctx);
        (t.accuracy(&input, &out), ctx.virtual_cost())
    }

    #[test]
    fn operator_is_spd() {
        let mut rng = SmallRng::seed_from_u64(1);
        let op = SpdOperator::random(5, &mut rng);
        // Symmetry: check ⟨A·x, y⟩ = ⟨x, A·y⟩ on random vectors.
        let x: Vec<f64> = (0..25).map(|i| (i as f64).sin()).collect();
        let y: Vec<f64> = (0..25).map(|i| (i as f64).cos()).collect();
        let ax = op.apply(&x);
        let ay = op.apply(&y);
        let lhs: f64 = ax.iter().zip(&y).map(|(a, b)| a * b).sum();
        let rhs: f64 = x.iter().zip(&ay).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-10);
        // Positive definiteness: xᵀA·x > 0.
        let xax: f64 = x.iter().zip(&ax).map(|(a, b)| a * b).sum();
        assert!(xax > 0.0);
    }

    #[test]
    fn all_methods_converge() {
        for method in 0..3 {
            let (acc, _) = run(method, 500, 12, 2);
            assert!(
                acc > 6.0,
                "{} only reached {acc} orders",
                METHOD_NAMES[method]
            );
        }
    }

    #[test]
    fn accuracy_grows_with_iterations() {
        let (a5, _) = run(0, 5, 16, 3);
        let (a50, _) = run(0, 50, 16, 3);
        assert!(a50 > a5, "{a50} !> {a5}");
    }

    #[test]
    fn preconditioning_reduces_iterations_to_reach_target() {
        // Count iterations to 6 orders via bisection over `iters`.
        let needed = |method: usize| -> i64 {
            let mut lo = 1i64;
            let mut hi = 1024;
            while lo < hi {
                let mid = (lo + hi) / 2;
                let (acc, _) = run(method, mid, 16, 4);
                if acc >= 6.0 {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            lo
        };
        let cg = needed(0);
        let jacobi = needed(1);
        let poly = needed(2);
        assert!(
            jacobi <= cg,
            "Jacobi PCG ({jacobi}) needs no more iterations than CG ({cg})"
        );
        assert!(
            poly <= jacobi,
            "polynomial PCG ({poly}) needs no more iterations than Jacobi ({jacobi})"
        );
    }

    #[test]
    fn polynomial_iterations_cost_more_each() {
        let (_, cg_cost) = run(0, 20, 16, 5);
        let (_, poly_cost) = run(2, 20, 16, 5);
        assert!(poly_cost > cg_cost);
    }
}
