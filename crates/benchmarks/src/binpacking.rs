//! Bin Packing benchmark (§6.1.1).
//!
//! Thirteen polynomial-time approximation algorithms for the NP-hard
//! BINPACKING problem, from `NextFit` (2×OPT worst case, `O(n)`) to
//! `ModifiedFirstFitDecreasing` (71/60×OPT). The training generator
//! "divides up full bins into a number of items", so OPT is known at
//! training time "without the need for an exponential search".
//!
//! The paper reports accuracy as `bins / OPT` (lower = better, range
//! 1.0–1.5 in Fig. 7). The tuner's convention is larger-is-better, so
//! the accuracy metric is `2 − bins/OPT` (see [`ratio_to_accuracy`]).
//!
//! The per-item placement scans — the kernels' hot loops — run through
//! [`pb_runtime::parallel::parallel_gen`] when the number of open bins
//! reaches the `par_cutoff` tunable, exposing the §5.2 work-stealing
//! switch-over to the autotuner exactly like clustering's
//! nearest-centroid scan. Below the cutoff the sequential code path
//! (and its early-exit probe charging) is bit-identical to the
//! pre-tunable behavior; above it the packing decisions are unchanged
//! and only the virtual-cost schedule differs.

use pb_config::Schema;
use pb_runtime::parallel::{available_threads, parallel_engages, parallel_gen};
use pb_runtime::{ExecCtx, Transform};
use rand::rngs::SmallRng;
use rand::Rng;

/// The 13 packing heuristics, in the paper's order.
pub const ALGORITHM_NAMES: [&str; 13] = [
    "FirstFit",
    "FirstFitDecreasing",
    "ModifiedFirstFitDecreasing",
    "BestFit",
    "BestFitDecreasing",
    "LastFit",
    "LastFitDecreasing",
    "NextFit",
    "NextFitDecreasing",
    "WorstFit",
    "WorstFitDecreasing",
    "AlmostWorstFit",
    "AlmostWorstFitDecreasing",
];

/// A training instance: item sizes plus the number of bins the
/// generator unpacked them from (an upper bound on — and in practice
/// equal to — OPT).
#[derive(Debug, Clone, PartialEq)]
pub struct BinPackingInput {
    /// Item sizes in `(0, 1]`, in generator order.
    pub items: Vec<f64>,
    /// The number of full bins the generator split.
    pub opt_bins: usize,
}

/// Generates `n` items by splitting full bins with stick-breaking into
/// 2–5 pieces each, so the optimal packing uses exactly the generated
/// bins.
pub fn generate_input(n: u64, rng: &mut SmallRng) -> BinPackingInput {
    let n = n.max(1) as usize;
    let mut items = Vec::with_capacity(n);
    let mut opt_bins = 0;
    while items.len() < n {
        opt_bins += 1;
        let pieces = rng.gen_range(2..=5usize).min(n - items.len()).max(1);
        // Stick-breaking: cut [0, 1] at `pieces − 1` sorted points.
        let mut cuts: Vec<f64> = (0..pieces - 1).map(|_| rng.gen::<f64>()).collect();
        cuts.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mut last = 0.0;
        for &c in &cuts {
            items.push((c - last).max(f64::MIN_POSITIVE));
            last = c;
        }
        items.push((1.0 - last).max(f64::MIN_POSITIVE));
    }
    items.truncate(n);
    // Shuffle so arrival order carries no information about the source
    // bins (the generator controls the size *distribution* only).
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
    BinPackingInput { items, opt_bins }
}

/// A packing: the residual capacity of each open bin.
#[derive(Debug, Clone, Default)]
pub struct Packing {
    residuals: Vec<f64>,
}

impl Packing {
    /// Number of bins used.
    pub fn bins(&self) -> usize {
        self.residuals.len()
    }

    /// Residual capacities.
    pub fn residuals(&self) -> &[f64] {
        &self.residuals
    }

    /// Whether no bin is over capacity (beyond rounding).
    pub fn is_valid(&self) -> bool {
        self.residuals.iter().all(|&r| r >= -1e-12)
    }

    fn place(&mut self, bin: usize, item: f64) {
        self.residuals[bin] -= item;
    }

    fn open(&mut self, item: f64) {
        self.residuals.push(1.0 - item);
    }
}

/// Cost charged per bin probed, so virtual cost tracks the real
/// `O(n·bins)` vs `O(n)` asymptotics that drive Fig. 6(a).
const PROBE_COST: f64 = 1.0;

/// Virtual-cost units modelling the fixed overhead of dispatching a
/// placement scan to the work-stealing pool (same constant as
/// clustering, so `par_cutoff` has the same dispatch-vs-division
/// tradeoff the real scheduler exhibits).
const PAR_DISPATCH_COST: f64 = 512.0;

/// Whether an item's scan over `bins` open bins goes to the pool.
fn scan_engages(bins: usize, par_cutoff: usize) -> bool {
    parallel_engages(bins, par_cutoff)
}

/// The shared parallel-regime prelude of every placement kernel:
/// `Some(mask)` of `residual >= item - 1e-15` per open bin when the
/// scan engages the pool, `None` when the kernel should probe (and
/// charge) sequentially. One definition keeps the fit tolerance and
/// engage condition in a single place.
fn fit_mask_if_parallel(
    p: &Packing,
    item: f64,
    par_cutoff: usize,
    ctx: &mut ExecCtx<'_>,
) -> Option<Vec<bool>> {
    if scan_engages(p.bins(), par_cutoff) {
        Some(parallel_fit_mask(p, par_cutoff, ctx, |r| r >= item - 1e-15))
    } else {
        None
    }
}

/// Charges for one pool-dispatched scan over `bins` bins: the probe
/// work divides across the pool's threads, plus the dispatch overhead.
fn charge_parallel_scan(ctx: &mut ExecCtx<'_>, bins: usize) {
    ctx.charge(bins as f64 * PROBE_COST / available_threads() as f64 + PAR_DISPATCH_COST);
}

/// Computes `pred(residual)` for every open bin on the pool. The
/// per-bin probes are pure, so the mask (and thus every placement
/// decision derived from it) is identical to a sequential scan.
fn parallel_fit_mask(
    p: &Packing,
    par_cutoff: usize,
    ctx: &mut ExecCtx<'_>,
    pred: impl Fn(f64) -> bool + Sync,
) -> Vec<bool> {
    let mask = parallel_gen(p.bins(), par_cutoff, |b| pred(p.residuals[b]));
    charge_parallel_scan(ctx, p.bins());
    mask
}

/// Scan direction of a one-slot placement (first fitting bin vs last).
#[derive(Clone, Copy, PartialEq)]
enum ScanFrom {
    Front,
    Back,
}

/// Places `item` in the first (or last) bin it fits, opening a new bin
/// otherwise — the shared per-item scan of FirstFit, LastFit, and
/// MFFD's final FFD pass. Sequential scans probe (and charge) with
/// early exit; at or above `par_cutoff` open bins the fit mask
/// computes on the pool, with identical placement either way.
fn place_one(p: &mut Packing, item: f64, from: ScanFrom, par_cutoff: usize, ctx: &mut ExecCtx<'_>) {
    let placed = if let Some(fits) = fit_mask_if_parallel(p, item, par_cutoff, ctx) {
        let hit = match from {
            ScanFrom::Front => fits.iter().position(|&f| f),
            ScanFrom::Back => fits.iter().rposition(|&f| f),
        };
        match hit {
            Some(b) => {
                p.place(b, item);
                true
            }
            None => false,
        }
    } else {
        // Concrete counted loops on the sequential path — this is the
        // kernels' hottest scan, so no iterator indirection.
        let probe = |p: &mut Packing, b: usize, ctx: &mut ExecCtx<'_>| {
            ctx.charge(PROBE_COST);
            if p.residuals[b] >= item - 1e-15 {
                p.place(b, item);
                true
            } else {
                false
            }
        };
        let bins = p.bins();
        match from {
            ScanFrom::Front => (0..bins).any(|b| probe(p, b, ctx)),
            ScanFrom::Back => (0..bins).rev().any(|b| probe(p, b, ctx)),
        }
    };
    if !placed {
        p.open(item);
    }
}

fn pack_first_fit(items: &[f64], par_cutoff: usize, ctx: &mut ExecCtx<'_>) -> Packing {
    let mut p = Packing::default();
    for &item in items {
        place_one(&mut p, item, ScanFrom::Front, par_cutoff, ctx);
    }
    p
}

fn pack_best_fit(items: &[f64], par_cutoff: usize, ctx: &mut ExecCtx<'_>) -> Packing {
    let mut p = Packing::default();
    for &item in items {
        let fits = fit_mask_if_parallel(&p, item, par_cutoff, ctx);
        let mut best: Option<(usize, f64)> = None;
        for b in 0..p.bins() {
            let fit = match &fits {
                Some(mask) => mask[b],
                None => {
                    ctx.charge(PROBE_COST);
                    p.residuals[b] >= item - 1e-15
                }
            };
            let r = p.residuals[b];
            // Strict `<` keeps the lowest index among ties, in both
            // regimes.
            if fit && best.map(|(_, br)| r < br).unwrap_or(true) {
                best = Some((b, r));
            }
        }
        match best {
            Some((b, _)) => p.place(b, item),
            None => p.open(item),
        }
    }
    p
}

fn pack_worst_fit(items: &[f64], par_cutoff: usize, ctx: &mut ExecCtx<'_>) -> Packing {
    let mut p = Packing::default();
    for &item in items {
        let fits = fit_mask_if_parallel(&p, item, par_cutoff, ctx);
        let mut worst: Option<(usize, f64)> = None;
        for b in 0..p.bins() {
            let fit = match &fits {
                Some(mask) => mask[b],
                None => {
                    ctx.charge(PROBE_COST);
                    p.residuals[b] >= item - 1e-15
                }
            };
            let r = p.residuals[b];
            if fit && worst.map(|(_, wr)| r > wr).unwrap_or(true) {
                worst = Some((b, r));
            }
        }
        match worst {
            Some((b, _)) => p.place(b, item),
            None => p.open(item),
        }
    }
    p
}

/// `AlmostWorstFit`: place in the k-th least-full bin with capacity
/// (`k = 2` by the textbook definition; generalized per the paper,
/// "our implementation generalizes it and supports a variable
/// compiler-set k").
fn pack_almost_worst_fit(
    items: &[f64],
    k: usize,
    par_cutoff: usize,
    ctx: &mut ExecCtx<'_>,
) -> Packing {
    let mut p = Packing::default();
    for &item in items {
        // Collect bins with capacity, sorted by descending residual.
        let mut fits: Vec<(usize, f64)> = Vec::new();
        if let Some(mask) = fit_mask_if_parallel(&p, item, par_cutoff, ctx) {
            for (b, fit) in mask.into_iter().enumerate() {
                if fit {
                    fits.push((b, p.residuals[b]));
                }
            }
        } else {
            for b in 0..p.bins() {
                ctx.charge(PROBE_COST);
                if p.residuals[b] >= item - 1e-15 {
                    fits.push((b, p.residuals[b]));
                }
            }
        }
        if fits.is_empty() {
            p.open(item);
        } else {
            fits.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
            let idx = (k.max(1) - 1).min(fits.len() - 1);
            p.place(fits[idx].0, item);
        }
    }
    p
}

fn pack_last_fit(items: &[f64], par_cutoff: usize, ctx: &mut ExecCtx<'_>) -> Packing {
    let mut p = Packing::default();
    for &item in items {
        place_one(&mut p, item, ScanFrom::Back, par_cutoff, ctx);
    }
    p
}

fn pack_next_fit(items: &[f64], ctx: &mut ExecCtx<'_>) -> Packing {
    let mut p = Packing::default();
    for &item in items {
        ctx.charge(PROBE_COST);
        let last = p.bins();
        if last > 0 && p.residuals[last - 1] >= item - 1e-15 {
            p.place(last - 1, item);
        } else {
            p.open(item);
        }
    }
    p
}

/// `ModifiedFirstFitDecreasing` (Johnson & Garey): classify items into
/// large (> 1/2), medium (> 1/3], small (> 1/6], and tiny; give every
/// large item its own bin; walk those bins from most-full to
/// least-full trying to add one medium item (or the two smallest small
/// items that fit); finish with FFD on whatever remains.
fn pack_mffd(items: &[f64], par_cutoff: usize, ctx: &mut ExecCtx<'_>) -> Packing {
    let mut sorted = items.to_vec();
    charge_sort(ctx, sorted.len());
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite"));

    let mut large: Vec<f64> = Vec::new();
    let mut medium: Vec<f64> = Vec::new();
    let mut rest: Vec<f64> = Vec::new();
    for &x in &sorted {
        if x > 0.5 {
            large.push(x);
        } else if x > 1.0 / 3.0 {
            medium.push(x);
        } else {
            rest.push(x);
        }
    }

    let mut p = Packing::default();
    for &x in &large {
        p.open(x);
    }
    // Bins of large items, most-full first (they are already in
    // descending item order, so ascending residual order = original).
    let mut medium_used = vec![false; medium.len()];
    for b in 0..p.bins() {
        ctx.charge(PROBE_COST);
        // Try the largest unused medium item that fits.
        let mut chosen: Option<usize> = None;
        for (mi, &m) in medium.iter().enumerate() {
            ctx.charge(PROBE_COST);
            if !medium_used[mi] && p.residuals[b] >= m - 1e-15 {
                chosen = Some(mi);
                break;
            }
        }
        if let Some(mi) = chosen {
            medium_used[mi] = true;
            let m = medium[mi];
            p.place(b, m);
        } else {
            // Try the two smallest remaining small items.
            if rest.len() >= 2 {
                let a = rest[rest.len() - 1];
                let c = rest[rest.len() - 2];
                if p.residuals[b] >= a + c - 1e-15 {
                    rest.pop();
                    rest.pop();
                    p.place(b, a + c);
                }
            }
        }
    }
    // FFD on the leftovers (medium unused + rest, already descending).
    // This final placement loop is the same first-fit scan as the
    // standalone kernel, so it shares the tunable switch-over (the
    // large/medium pairing walk above stays sequential: its probes
    // interleave mutation and cannot split).
    let mut leftovers: Vec<f64> = medium
        .iter()
        .enumerate()
        .filter(|(i, _)| !medium_used[*i])
        .map(|(_, &m)| m)
        .collect();
    leftovers.extend(rest);
    for &item in &leftovers {
        place_one(&mut p, item, ScanFrom::Front, par_cutoff, ctx);
    }
    p
}

fn charge_sort(ctx: &mut ExecCtx<'_>, n: usize) {
    let n = n.max(2) as f64;
    ctx.charge(n * n.log2());
}

fn decreasing(items: &[f64], ctx: &mut ExecCtx<'_>) -> Vec<f64> {
    charge_sort(ctx, items.len());
    let mut sorted = items.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
    sorted
}

/// Runs one named algorithm (index into [`ALGORITHM_NAMES`]).
///
/// `par_cutoff` is the §5.2 switch-over: placement scans over at least
/// that many open bins split across the work-stealing pool (pass
/// `usize::MAX` for pure sequential execution). Packing decisions are
/// identical in both regimes.
///
/// # Panics
///
/// Panics if `algorithm >= 13`.
pub fn pack_with(
    algorithm: usize,
    items: &[f64],
    awf_k: usize,
    par_cutoff: usize,
    ctx: &mut ExecCtx<'_>,
) -> Packing {
    match algorithm {
        0 => pack_first_fit(items, par_cutoff, ctx),
        1 => {
            let s = decreasing(items, ctx);
            pack_first_fit(&s, par_cutoff, ctx)
        }
        2 => pack_mffd(items, par_cutoff, ctx),
        3 => pack_best_fit(items, par_cutoff, ctx),
        4 => {
            let s = decreasing(items, ctx);
            pack_best_fit(&s, par_cutoff, ctx)
        }
        5 => pack_last_fit(items, par_cutoff, ctx),
        6 => {
            let s = decreasing(items, ctx);
            pack_last_fit(&s, par_cutoff, ctx)
        }
        7 => pack_next_fit(items, ctx),
        8 => {
            let s = decreasing(items, ctx);
            pack_next_fit(&s, ctx)
        }
        9 => pack_worst_fit(items, par_cutoff, ctx),
        10 => {
            let s = decreasing(items, ctx);
            pack_worst_fit(&s, par_cutoff, ctx)
        }
        11 => pack_almost_worst_fit(items, awf_k, par_cutoff, ctx),
        12 => {
            let s = decreasing(items, ctx);
            pack_almost_worst_fit(&s, awf_k, par_cutoff, ctx)
        }
        other => panic!("unknown bin-packing algorithm index {other}"),
    }
}

/// Converts the paper's `bins/OPT` ratio (lower = better) into the
/// tuner's larger-is-better accuracy: `2 − ratio`.
pub fn ratio_to_accuracy(ratio: f64) -> f64 {
    2.0 - ratio
}

/// Inverse of [`ratio_to_accuracy`].
pub fn accuracy_to_ratio(accuracy: f64) -> f64 {
    2.0 - accuracy
}

/// The Bin Packing variable-accuracy transform.
///
/// Tunables: the 13-way `algorithm` choice site (a decision tree over
/// input size, so different sizes may pack differently — exactly the
/// structure of Fig. 7) and the `almost_worst_k` parameter.
#[derive(Debug, Clone, Copy, Default)]
pub struct BinPacking;

impl Transform for BinPacking {
    type Input = BinPackingInput;
    type Output = Packing;

    fn name(&self) -> &str {
        "binpacking"
    }

    fn schema(&self) -> Schema {
        let mut s = Schema::new("binpacking");
        s.add_choice_site("algorithm", ALGORITHM_NAMES.len());
        s.add_user_param("almost_worst_k", 2, 8);
        s.add_cutoff("par_cutoff", 16, 1 << 16);
        s
    }

    fn generate_input(&self, n: u64, rng: &mut SmallRng) -> BinPackingInput {
        generate_input(n, rng)
    }

    fn execute(&self, input: &BinPackingInput, ctx: &mut ExecCtx<'_>) -> Packing {
        let algorithm = ctx.choice("algorithm").expect("schema declares algorithm");
        let k = ctx.param("almost_worst_k").expect("schema declares k") as usize;
        let par_cutoff = ctx.param("par_cutoff").expect("schema").max(1) as usize;
        ctx.event(ALGORITHM_NAMES[algorithm]);
        pack_with(algorithm, &input.items, k, par_cutoff, ctx)
    }

    fn accuracy(&self, input: &BinPackingInput, output: &Packing) -> f64 {
        let ratio = output.bins() as f64 / input.opt_bins.max(1) as f64;
        ratio_to_accuracy(ratio)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_config::Config;
    use rand::SeedableRng;

    fn ctx_for<'a>(schema: &'a Schema, config: &'a Config, n: u64) -> ExecCtx<'a> {
        ExecCtx::new(schema, config, n, 0)
    }

    fn run_all(items: &[f64]) -> Vec<Packing> {
        let t = BinPacking;
        let schema = t.schema();
        let config = schema.default_config();
        (0..13)
            .map(|alg| {
                let mut ctx = ctx_for(&schema, &config, items.len() as u64);
                pack_with(alg, items, 2, usize::MAX, &mut ctx)
            })
            .collect()
    }

    #[test]
    fn par_cutoff_changes_schedule_not_packings() {
        let mut rng = SmallRng::seed_from_u64(11);
        let input = generate_input(600, &mut rng);
        let t = BinPacking;
        let schema = t.schema();
        // Always-parallel vs never-parallel must agree on every
        // algorithm's packing bit for bit: the cutoff tunes the
        // scheduler, not the placement decisions.
        for alg in 0..13 {
            let packs: Vec<Packing> = [16usize, usize::MAX]
                .into_iter()
                .map(|cutoff| {
                    let config = schema.default_config();
                    let mut ctx = ExecCtx::new(&schema, &config, 600, 0);
                    pack_with(alg, &input.items, 2, cutoff, &mut ctx)
                })
                .collect();
            assert_eq!(
                packs[0].residuals(),
                packs[1].residuals(),
                "{} diverged across the cutoff",
                ALGORITHM_NAMES[alg]
            );
        }
    }

    #[test]
    fn generator_splits_full_bins() {
        let mut rng = SmallRng::seed_from_u64(1);
        let input = generate_input(100, &mut rng);
        assert_eq!(input.items.len(), 100);
        assert!(input.items.iter().all(|&x| x > 0.0 && x <= 1.0));
        // Total volume can't exceed the generated bins.
        let total: f64 = input.items.iter().sum();
        assert!(total <= input.opt_bins as f64 + 1e-9);
        assert!(input.opt_bins >= 20, "2–5 items per bin over 100 items");
    }

    #[test]
    fn all_algorithms_produce_valid_packings() {
        let mut rng = SmallRng::seed_from_u64(2);
        let input = generate_input(200, &mut rng);
        for (alg, p) in run_all(&input.items).into_iter().enumerate() {
            assert!(p.is_valid(), "{} overfilled a bin", ALGORITHM_NAMES[alg]);
            // Volume lower bound: bins >= ceil(total volume).
            let total: f64 = input.items.iter().sum();
            assert!(
                p.bins() as f64 >= total - 1e-9,
                "{} lost items",
                ALGORITHM_NAMES[alg]
            );
        }
    }

    #[test]
    fn worst_case_bounds_hold_on_random_instances() {
        // NextFit ≤ 2·OPT; FirstFit ≤ 1.7·OPT + 1; FFD ≤ 4/3·OPT + 1.
        // Our generator knows OPT.
        let rng = SmallRng::seed_from_u64(3);
        for seed in 0..5u64 {
            let mut r = SmallRng::seed_from_u64(seed);
            let input = generate_input(150 + 10 * seed, &mut r);
            let packs = run_all(&input.items);
            let opt = input.opt_bins as f64;
            assert!(packs[7].bins() as f64 <= 2.0 * opt + 1.0, "NextFit bound");
            assert!(packs[0].bins() as f64 <= 1.7 * opt + 1.0, "FirstFit bound");
            assert!(packs[1].bins() as f64 <= 4.0 / 3.0 * opt + 1.0, "FFD bound");
            assert!(
                packs[2].bins() as f64 <= 71.0 / 60.0 * opt + 1.0,
                "MFFD bound (got {} vs opt {})",
                packs[2].bins(),
                opt
            );
            let _ = rng;
        }
    }

    #[test]
    fn decreasing_variants_do_no_worse_on_average() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut ff = 0usize;
        let mut ffd = 0usize;
        for _ in 0..10 {
            let input = generate_input(120, &mut rng);
            let packs = run_all(&input.items);
            ff += packs[0].bins();
            ffd += packs[1].bins();
        }
        assert!(ffd <= ff, "FFD ({ffd}) should beat FF ({ff}) in aggregate");
    }

    #[test]
    fn next_fit_charges_linear_cost() {
        let t = BinPacking;
        let schema = t.schema();
        let mut config = schema.default_config();
        // Select NextFit (index 7) everywhere.
        config
            .set_by_name(
                &schema,
                "algorithm",
                pb_config::Value::Tree(pb_config::DecisionTree::single(7)),
            )
            .unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let input = generate_input(500, &mut rng);
        let mut ctx = ExecCtx::new(&schema, &config, 500, 0);
        let _ = t.execute(&input, &mut ctx);
        let nf_cost = ctx.virtual_cost();
        assert!(
            (nf_cost - 500.0).abs() < 1.0,
            "NextFit probes once per item"
        );

        // FirstFit on the same input is superlinear.
        config
            .set_by_name(
                &schema,
                "algorithm",
                pb_config::Value::Tree(pb_config::DecisionTree::single(0)),
            )
            .unwrap();
        let mut ctx = ExecCtx::new(&schema, &config, 500, 0);
        let _ = t.execute(&input, &mut ctx);
        assert!(ctx.virtual_cost() > 4.0 * nf_cost);
    }

    #[test]
    fn accuracy_conversion_round_trips() {
        for r in [1.0, 1.1, 1.5] {
            assert!((accuracy_to_ratio(ratio_to_accuracy(r)) - r).abs() < 1e-12);
        }
        // Perfect packing has accuracy 1.0.
        assert_eq!(ratio_to_accuracy(1.0), 1.0);
    }

    #[test]
    fn transform_end_to_end() {
        let t = BinPacking;
        let schema = t.schema();
        let config = schema.default_config();
        let mut rng = SmallRng::seed_from_u64(6);
        let input = t.generate_input(64, &mut rng);
        let mut ctx = ExecCtx::new(&schema, &config, 64, 0);
        let out = t.execute(&input, &mut ctx);
        let acc = t.accuracy(&input, &out);
        assert!(acc <= 1.0 + 1e-12, "cannot beat OPT");
        assert!(acc > 0.0, "first fit is within 2x of OPT here");
    }
}
