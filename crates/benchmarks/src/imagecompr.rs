//! Image compression benchmark (§6.1.4).
//!
//! Compresses an `n × n` "image" (entries `U(0, 1)` as in the paper)
//! by storing its best rank-`k` approximation from the SVD. The number
//! of singular values `k` is the accuracy variable; the algorithmic
//! choice is the eigensolver: the full-spectrum hybrid (QR iteration
//! or divide-and-conquer) versus "Bisection method for only k
//! eigenvalues and eigenvectors".
//!
//! Accuracy metric: "the ratio between the RMS error of the initial
//! guess (the zero matrix) to the RMS error of the output compared
//! with the input matrix A, converted to log-scale" —
//! `log₁₀(rms(A) / rms(A − A_k))`.

use pb_config::Schema;
use pb_linalg::svd::{svd_top_k, SvdMethod};
use pb_linalg::{Matrix, Svd};
use pb_runtime::{ExecCtx, Transform};
use rand::rngs::SmallRng;

/// Eigensolver choice indices.
pub const SOLVER_NAMES: [&str; 3] = ["qr", "divide_and_conquer", "bisection_k"];

/// The image-compression variable-accuracy transform.
#[derive(Debug, Clone, Copy, Default)]
pub struct ImageCompression;

impl Transform for ImageCompression {
    type Input = Matrix;
    type Output = Svd;

    fn name(&self) -> &str {
        "imagecompression"
    }

    fn schema(&self) -> Schema {
        let mut s = Schema::new("imagecompression");
        s.add_accuracy_variable("rank_k", 1, 2048);
        s.add_choice_site("eigensolver", SOLVER_NAMES.len());
        s
    }

    fn generate_input(&self, n: u64, rng: &mut SmallRng) -> Matrix {
        let n = n.max(2) as usize;
        Matrix::random_uniform(n, n, rng)
    }

    fn execute(&self, input: &Matrix, ctx: &mut ExecCtx<'_>) -> Svd {
        let n = input.rows();
        let k = (ctx.param("rank_k").expect("schema declares rank_k") as usize).clamp(1, n);
        let solver = ctx
            .choice("eigensolver")
            .expect("schema declares eigensolver");
        ctx.event(SOLVER_NAMES[solver.min(2)]);

        let n3 = (n * n * n) as f64;
        let method = match solver {
            0 => {
                // Tridiagonalization + full QL with vector accumulation.
                ctx.charge(n3 + 6.0 * n3);
                SvdMethod::Qr
            }
            1 => {
                // D&C deflation typically saves a large constant.
                ctx.charge(n3 + 2.0 * n3);
                SvdMethod::DivideAndConquer
            }
            _ => {
                // Tridiagonalization + k bisections + k inverse
                // iterations.
                ctx.charge(n3 + (k * n * n) as f64);
                SvdMethod::Bisection
            }
        };
        // Forming u_i = A·vᵢ/σᵢ and later reconstruction are O(k·n²).
        ctx.charge((k * n * n) as f64);
        svd_top_k(input, k, method).expect("QL iteration converges on Gram matrices")
    }

    fn accuracy(&self, input: &Matrix, output: &Svd) -> f64 {
        let initial = input.rms().max(f64::MIN_POSITIVE);
        let err = input.sub(&output.reconstruct()).rms();
        if err <= 0.0 {
            return 16.0;
        }
        (initial / err).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_config::{Config, DecisionTree, Value};
    use rand::SeedableRng;

    fn run(k: i64, solver: usize, n: u64) -> (f64, f64) {
        let t = ImageCompression;
        let schema = t.schema();
        let mut config: Config = schema.default_config();
        config
            .set_by_name(&schema, "rank_k", Value::Int(k))
            .unwrap();
        config
            .set_by_name(
                &schema,
                "eigensolver",
                Value::Tree(DecisionTree::single(solver)),
            )
            .unwrap();
        let mut rng = SmallRng::seed_from_u64(11);
        let input = t.generate_input(n, &mut rng);
        let mut ctx = ExecCtx::new(&schema, &config, n, 0);
        let out = t.execute(&input, &mut ctx);
        (t.accuracy(&input, &out), ctx.virtual_cost())
    }

    #[test]
    fn accuracy_grows_with_rank() {
        let (a1, _) = run(1, 0, 24);
        let (a8, _) = run(8, 0, 24);
        let (a24, _) = run(24, 0, 24);
        assert!(a1 < a8 && a8 < a24, "{a1} {a8} {a24}");
        assert!(a24 > 9.0, "full rank is near-exact: {a24}");
    }

    #[test]
    fn solvers_agree_on_accuracy() {
        let (qr, _) = run(6, 0, 20);
        let (dc, _) = run(6, 1, 20);
        let (bi, _) = run(6, 2, 20);
        assert!((qr - dc).abs() < 0.05, "qr {qr} vs dc {dc}");
        assert!((qr - bi).abs() < 0.05, "qr {qr} vs bisect {bi}");
    }

    #[test]
    fn bisection_is_cheaper_for_small_k() {
        let (_, qr_cost) = run(2, 0, 32);
        let (_, bi_cost) = run(2, 2, 32);
        assert!(
            bi_cost < qr_cost,
            "bisection ({bi_cost}) should undercut QR ({qr_cost}) at k=2"
        );
    }

    #[test]
    fn rank_is_clamped_to_dimension() {
        let t = ImageCompression;
        let schema = t.schema();
        let mut config = schema.default_config();
        config
            .set_by_name(&schema, "rank_k", Value::Int(2048))
            .unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        let input = t.generate_input(8, &mut rng);
        let mut ctx = ExecCtx::new(&schema, &config, 8, 0);
        let out = t.execute(&input, &mut ctx);
        assert_eq!(out.rank(), 8);
    }
}
