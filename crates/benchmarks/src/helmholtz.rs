//! 3D variable-coefficient Helmholtz benchmark (§6.1.3).
//!
//! The most complex benchmark in the suite: a multigrid solver over
//! the operator `α·a·φ − β·∇·(b·∇φ)` where *every recursion level*
//! carries its own tuned action (recurse / SOR / direct) and
//! relaxation counts, plus an optional *estimation phase* — a full
//! multigrid start that computes an initial guess on coarser grids
//! ("work is done to converge towards the solution at smaller problem
//! sizes before work is expended at the largest problem size", §6.4).
//! The execution trace of a tuned configuration *is* the cycle shape
//! drawn in Fig. 8.

use pb_config::Schema;
use pb_multigrid::helmholtz3d::{add_correction, prolong, restrict};
use pb_multigrid::{Grid3d, HelmholtzProblem};
use pb_runtime::{ExecCtx, Transform};
use rand::rngs::SmallRng;

/// Maximum recursion depth with dedicated tunables.
pub const MAX_LEVELS: usize = 6;

/// Per-level action choices.
pub const ACTION_NAMES: [&str; 3] = ["recurse", "sor_solve", "direct"];

/// One Helmholtz instance: the operator and its right-hand side.
#[derive(Debug, Clone, PartialEq)]
pub struct HelmholtzInput {
    /// The discretized variable-coefficient operator.
    pub problem: HelmholtzProblem,
    /// Right-hand side.
    pub f: Grid3d,
}

/// The 3D Helmholtz variable-accuracy transform. The tuner's input
/// size `n` is the per-dimension grid size (rounded up to `2^k − 1`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Helmholtz3d;

impl Helmholtz3d {
    /// Solves `A·e = f` on (a coarsening of) the problem, recursively,
    /// honouring the per-level tuned actions.
    fn solve_level(
        &self,
        problem: &HelmholtzProblem,
        f: &Grid3d,
        depth: usize,
        ctx: &mut ExecCtx<'_>,
    ) -> Grid3d {
        let n = problem.n();
        let d = depth.min(MAX_LEVELS - 1);
        let omega = ctx.float_param("omega").expect("schema declares omega");
        let points = (n * n * n) as f64;
        ctx.enter(format!("n{n}"));

        let action = if n <= 3 {
            2
        } else {
            ctx.with_size(n as u64, |ctx| {
                ctx.choice(&format!("level{d}_action")).expect("schema")
            })
        };

        let out = match action {
            2 => {
                // Dense Cholesky on n³ unknowns: O(n⁹) — the "ideal
                // direct solver" that only pays off on tiny grids.
                ctx.charge(points.powi(3) / 3.0 + points * points);
                ctx.event("direct");
                problem.direct_solve(f)
            }
            1 => {
                let iters = ctx
                    .for_enough(&format!("level{d}_sor_iters"))
                    .expect("schema");
                let mut phi = Grid3d::zeros(n);
                for _ in 0..iters {
                    problem.sor_sweep(&mut phi, f, omega);
                    ctx.charge(points * 8.0);
                    ctx.event("relax");
                }
                phi
            }
            _ => {
                let pre = ctx.for_enough(&format!("level{d}_pre")).expect("schema");
                let post = ctx.for_enough(&format!("level{d}_post")).expect("schema");
                let mut phi = Grid3d::zeros(n);
                for _ in 0..pre {
                    problem.sor_sweep(&mut phi, f, omega);
                    ctx.charge(points * 8.0);
                    ctx.event("relax");
                }
                let r = problem.residual(&phi, f);
                ctx.charge(points * 8.0);
                let rc = restrict(&r);
                let coarse = problem.coarsen();
                let ec = self.solve_level(&coarse, &rc, depth + 1, ctx);
                let ef = prolong(&ec);
                ctx.charge(points * 2.0);
                add_correction(&mut phi, &ef);
                for _ in 0..post {
                    problem.sor_sweep(&mut phi, f, omega);
                    ctx.charge(points * 8.0);
                    ctx.event("relax");
                }
                phi
            }
        };
        ctx.exit();
        out
    }

    /// The estimation phase: solve a coarsened problem and prolong the
    /// result as the initial guess (full multigrid).
    fn estimate(&self, problem: &HelmholtzProblem, f: &Grid3d, ctx: &mut ExecCtx<'_>) -> Grid3d {
        let n = problem.n();
        if n <= 3 {
            return Grid3d::zeros(n);
        }
        ctx.enter("estimate");
        let fc = restrict(f);
        let coarse = problem.coarsen();
        let phi_c = self.solve_level(&coarse, &fc, 1, ctx);
        let guess = prolong(&phi_c);
        ctx.charge((n * n * n) as f64 * 2.0);
        ctx.exit();
        guess
    }
}

impl Transform for Helmholtz3d {
    type Input = HelmholtzInput;
    type Output = Grid3d;

    fn name(&self) -> &str {
        "helmholtz3d"
    }

    fn schema(&self) -> Schema {
        let mut s = Schema::new("helmholtz3d");
        for d in 0..MAX_LEVELS {
            s.add_choice_site(format!("level{d}_action"), ACTION_NAMES.len());
            s.add_accuracy_variable_with_default(format!("level{d}_pre"), 0, 6, 2);
            s.add_accuracy_variable_with_default(format!("level{d}_post"), 0, 6, 2);
            s.add_accuracy_variable_with_default(format!("level{d}_sor_iters"), 1, 200, 10);
        }
        s.add_accuracy_variable_with_default("cycles", 1, 48, 2);
        s.add_switch("estimate", 2);
        s.add_float_param("omega", 0.8, 1.9);
        s
    }

    fn generate_input(&self, n: u64, rng: &mut SmallRng) -> HelmholtzInput {
        let size = round_up_size(n.max(1) as usize);
        HelmholtzInput {
            problem: HelmholtzProblem::random(size, 1.0, 1.0, rng),
            f: Grid3d::random_uniform(size, -1.0, 1.0, rng),
        }
    }

    fn execute(&self, input: &HelmholtzInput, ctx: &mut ExecCtx<'_>) -> Grid3d {
        let cycles = ctx.for_enough("cycles").expect("schema declares cycles");
        let estimate = ctx.switch("estimate").expect("schema declares estimate");
        let problem = &input.problem;
        let n = problem.n();
        let mut phi = if estimate == 1 {
            self.estimate(problem, &input.f, ctx)
        } else {
            Grid3d::zeros(n)
        };
        for _ in 0..cycles {
            let r = problem.residual(&phi, &input.f);
            ctx.charge((n * n * n) as f64 * 8.0);
            let e = self.solve_level(problem, &r, 0, ctx);
            add_correction(&mut phi, &e);
        }
        phi
    }

    fn accuracy(&self, input: &HelmholtzInput, output: &Grid3d) -> f64 {
        let initial = input.f.rms().max(f64::MIN_POSITIVE);
        let after = input.problem.residual(output, &input.f).rms();
        if after <= 0.0 {
            return 16.0;
        }
        (initial / after).log10()
    }
}

/// Rounds up to the next `2^k − 1`.
fn round_up_size(n: usize) -> usize {
    let mut s = 1;
    while s < n {
        s = 2 * s + 1;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_config::{Config, DecisionTree, Value};
    use rand::SeedableRng;

    fn accuracy_of(config: &Config, schema: &Schema, n: u64, seed: u64) -> f64 {
        let t = Helmholtz3d;
        let mut rng = SmallRng::seed_from_u64(seed);
        let input = t.generate_input(n, &mut rng);
        let mut ctx = ExecCtx::new(schema, config, n, seed);
        let out = t.execute(&input, &mut ctx);
        t.accuracy(&input, &out)
    }

    #[test]
    fn direct_solve_at_small_size_is_machine_precision() {
        let t = Helmholtz3d;
        let schema = t.schema();
        let config = schema.default_config();
        // n = 3 forces the direct path regardless of configuration.
        let acc = accuracy_of(&config, &schema, 3, 1);
        assert!(acc > 9.0, "direct solve accuracy {acc}");
    }

    #[test]
    fn cycles_increase_accuracy() {
        let t = Helmholtz3d;
        let schema = t.schema();
        let mut base = schema.default_config();
        for d in 0..MAX_LEVELS {
            base.set_by_name(&schema, &format!("level{d}_pre"), Value::Int(2))
                .unwrap();
            base.set_by_name(&schema, &format!("level{d}_post"), Value::Int(2))
                .unwrap();
        }
        let mut one = base.clone();
        one.set_by_name(&schema, "cycles", Value::Int(1)).unwrap();
        let mut four = base.clone();
        four.set_by_name(&schema, "cycles", Value::Int(4)).unwrap();
        let a1 = accuracy_of(&one, &schema, 7, 2);
        let a4 = accuracy_of(&four, &schema, 7, 2);
        assert!(a4 > a1 + 0.5, "4 cycles ({a4}) ≫ 1 cycle ({a1})");
    }

    #[test]
    fn estimation_phase_helps_a_single_cycle() {
        let t = Helmholtz3d;
        let schema = t.schema();
        let mut base = schema.default_config();
        for d in 0..MAX_LEVELS {
            base.set_by_name(&schema, &format!("level{d}_pre"), Value::Int(1))
                .unwrap();
            base.set_by_name(&schema, &format!("level{d}_post"), Value::Int(1))
                .unwrap();
        }
        base.set_by_name(&schema, "cycles", Value::Int(1)).unwrap();
        let mut with_est = base.clone();
        with_est
            .set_by_name(&schema, "estimate", Value::Switch(1))
            .unwrap();
        let plain = accuracy_of(&base, &schema, 15, 3);
        let est = accuracy_of(&with_est, &schema, 15, 3);
        assert!(
            est > plain,
            "estimation phase ({est}) should beat a cold start ({plain})"
        );
    }

    #[test]
    fn sor_bottom_truncates_the_cycle() {
        // Configure level 1 to SOR-solve instead of recursing: the
        // trace must show depth 2 (plus the root), not the full
        // hierarchy.
        let t = Helmholtz3d;
        let schema = t.schema();
        let mut config = schema.default_config();
        for d in 0..MAX_LEVELS {
            config
                .set_by_name(&schema, &format!("level{d}_pre"), Value::Int(1))
                .unwrap();
        }
        config
            .set_by_name(
                &schema,
                "level1_action",
                Value::Tree(DecisionTree::single(1)),
            )
            .unwrap();
        config
            .set_by_name(&schema, "level1_sor_iters", Value::Int(5))
            .unwrap();
        let mut rng = SmallRng::seed_from_u64(4);
        let input = t.generate_input(15, &mut rng);
        let mut ctx = ExecCtx::new(&schema, &config, 15, 0);
        ctx.enable_trace();
        let _ = t.execute(&input, &mut ctx);
        let tree = ctx.trace_tree();
        assert_eq!(tree.depth(), 2, "level 1 bottoms out with SOR");
        assert!(tree.count_points("relax") >= 5);
        assert_eq!(tree.count_points("direct"), 0);
    }

    #[test]
    fn operator_coefficients_vary_per_input() {
        let t = Helmholtz3d;
        let mut rng = SmallRng::seed_from_u64(5);
        let a = t.generate_input(7, &mut rng);
        let b = t.generate_input(7, &mut rng);
        assert_ne!(a.problem.a, b.problem.a, "coefficient fields are random");
    }
}
