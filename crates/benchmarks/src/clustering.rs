//! k-means clustering benchmark (§6.1.2).
//!
//! Training data follows the paper: `√n` cluster centres drawn
//! uniformly from `[−250, 250]²`, remaining points scattered around
//! them with unit-normal noise; "the optimal value of k = √n is not
//! known to the autotuner". Tunables: the accuracy variable `k`, the
//! initialization choice (random columns vs k-means++), and the
//! iteration policy (once / iterate until fewer than a tunable
//! percentage of assignments change / iterate to a fixed point).
//! Accuracy metric: `√(2n / Σ Dᵢ²)`.
//!
//! The nearest-centroid distance computation — the kernel's hot loop —
//! runs through [`pb_runtime::parallel::parallel_gen`] with a tunable
//! `par_cutoff`, so the tuner sets the parallel/sequential switch-over
//! point of the work-stealing scheduler exactly as in paper §5.2.

use pb_config::Schema;
use pb_runtime::parallel::{available_threads, parallel_engages, parallel_gen};
use pb_runtime::{ExecCtx, Transform};
use rand::rngs::SmallRng;
use rand::Rng;

/// A set of 2D points (x and y in separate arrays, matching the
/// paper's `Points[n, 2]` layout).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Points {
    /// x coordinates.
    pub x: Vec<f64>,
    /// y coordinates.
    pub y: Vec<f64>,
}

impl Points {
    /// Number of points.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether there are no points.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }
}

/// Clustering output: centroid positions plus per-point assignments.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterAssignment {
    /// Final centroids.
    pub centroids: Points,
    /// `assignments[i]` = centroid index of point `i`.
    pub assignments: Vec<usize>,
}

/// Generates the paper's clustered training data.
pub fn generate_points(n: u64, rng: &mut SmallRng) -> Points {
    let n = n.max(1) as usize;
    let k = (n as f64).sqrt().round().max(1.0) as usize;
    let cx: Vec<f64> = (0..k).map(|_| rng.gen_range(-250.0..250.0)).collect();
    let cy: Vec<f64> = (0..k).map(|_| rng.gen_range(-250.0..250.0)).collect();
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    // First the centres themselves, then points distributed evenly.
    for i in 0..n {
        let c = i % k;
        if i < k {
            x.push(cx[c]);
            y.push(cy[c]);
        } else {
            x.push(cx[c] + normal_sample(rng));
            y.push(cy[c] + normal_sample(rng));
        }
    }
    Points { x, y }
}

fn normal_sample(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn dist2(points: &Points, i: usize, cx: f64, cy: f64) -> f64 {
    let dx = points.x[i] - cx;
    let dy = points.y[i] - cy;
    dx * dx + dy * dy
}

/// Random initialization: k distinct-ish random input points.
fn init_random(points: &Points, k: usize, rng: &mut SmallRng) -> Points {
    let n = points.len();
    let mut cx = Vec::with_capacity(k);
    let mut cy = Vec::with_capacity(k);
    for _ in 0..k {
        let i = rng.gen_range(0..n);
        cx.push(points.x[i]);
        cy.push(points.y[i]);
    }
    Points { x: cx, y: cy }
}

/// k-means++ initialization: subsequent centres drawn proportional to
/// squared distance from the nearest chosen centre.
fn init_kmeanspp(points: &Points, k: usize, rng: &mut SmallRng, ctx: &mut ExecCtx<'_>) -> Points {
    let n = points.len();
    let first = rng.gen_range(0..n);
    let mut cx = vec![points.x[first]];
    let mut cy = vec![points.y[first]];
    let mut d2: Vec<f64> = (0..n).map(|i| dist2(points, i, cx[0], cy[0])).collect();
    ctx.charge(n as f64);
    while cx.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    chosen = i;
                    break;
                }
                target -= w;
            }
            chosen
        };
        cx.push(points.x[next]);
        cy.push(points.y[next]);
        let c = cx.len() - 1;
        for i in 0..n {
            d2[i] = d2[i].min(dist2(points, i, cx[c], cy[c]));
        }
        ctx.charge(n as f64);
    }
    Points { x: cx, y: cy }
}

/// Nearest centroid to point `i` (pure: safe to evaluate in parallel).
fn nearest_centroid(points: &Points, centroids: &Points, i: usize) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for c in 0..centroids.len() {
        let d = dist2(points, i, centroids.x[c], centroids.y[c]);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

/// Virtual-cost units modelling the fixed overhead of dispatching a
/// batch to the work-stealing pool (wakeups, chunking, the join).
/// Gives `par_cutoff` the same tradeoff the real scheduler has: below
/// the crossover the dispatch overhead outweighs the divided work.
const PAR_DISPATCH_COST: f64 = 512.0;

/// Assigns every point to its nearest centroid; returns the number of
/// changed assignments.
///
/// The per-point distance scans split across the work-stealing pool
/// when the input reaches `par_cutoff` points (paper §5.2's tuned
/// switch-over). Each point's result is a pure function of the
/// inputs, so the *assignments* are identical in both regimes; the
/// *virtual cost* models the schedule — parallel execution divides
/// the scan across the pool's threads but pays [`PAR_DISPATCH_COST`]
/// — so the tuner can find the crossover deterministically, the way
/// wall-clock measurements would on real hardware. The thread count
/// is the pool's cached budget: constant within a process, so
/// parallel-vs-sequential evaluator modes stay bit-identical.
fn assign(
    points: &Points,
    centroids: &Points,
    assignments: &mut [usize],
    par_cutoff: usize,
    ctx: &mut ExecCtx<'_>,
) -> usize {
    let nearest = parallel_gen(points.len(), par_cutoff, |i| {
        nearest_centroid(points, centroids, i)
    });
    let mut changed = 0;
    for (slot, best) in assignments.iter_mut().zip(nearest) {
        if *slot != best {
            *slot = best;
            changed += 1;
        }
    }
    let work = (points.len() * centroids.len()) as f64;
    if parallel_engages(points.len(), par_cutoff) {
        ctx.charge(work / available_threads() as f64 + PAR_DISPATCH_COST);
    } else {
        ctx.charge(work);
    }
    changed
}

/// Moves each centroid to the mean of its assigned points (empty
/// clusters stay put).
fn update_centroids(
    points: &Points,
    centroids: &mut Points,
    assignments: &[usize],
    ctx: &mut ExecCtx<'_>,
) {
    let k = centroids.len();
    let mut sx = vec![0.0; k];
    let mut sy = vec![0.0; k];
    let mut count = vec![0usize; k];
    for (i, &c) in assignments.iter().enumerate() {
        sx[c] += points.x[i];
        sy[c] += points.y[i];
        count[c] += 1;
    }
    for c in 0..k {
        if count[c] > 0 {
            centroids.x[c] = sx[c] / count[c] as f64;
            centroids.y[c] = sy[c] / count[c] as f64;
        }
    }
    ctx.charge(points.len() as f64);
}

/// Sum of squared distances from each point to its centroid.
pub fn sum_cluster_distance_squared(points: &Points, result: &ClusterAssignment) -> f64 {
    result
        .assignments
        .iter()
        .enumerate()
        .map(|(i, &c)| dist2(points, i, result.centroids.x[c], result.centroids.y[c]))
        .sum()
}

/// The paper's accuracy metric `√(2n / Σ Dᵢ²)` (larger = tighter
/// clusters).
pub fn kmeans_accuracy(points: &Points, result: &ClusterAssignment) -> f64 {
    let ssd = sum_cluster_distance_squared(points, result);
    if ssd <= 0.0 {
        // Perfect clustering (every point on its centroid).
        return f64::MAX.sqrt();
    }
    (2.0 * points.len() as f64 / ssd).sqrt()
}

/// The k-means variable-accuracy transform.
#[derive(Debug, Clone, Copy, Default)]
pub struct Clustering;

/// Iteration-policy choice indices.
pub const ITERATION_NAMES: [&str; 3] = ["once", "stabilize_pct", "fixed_point"];
/// Initialization choice indices.
pub const INIT_NAMES: [&str; 2] = ["random", "kmeans++"];

impl Transform for Clustering {
    type Input = Points;
    type Output = ClusterAssignment;

    fn name(&self) -> &str {
        "kmeans"
    }

    fn schema(&self) -> Schema {
        let mut s = Schema::new("kmeans");
        s.add_accuracy_variable("k", 1, 4096);
        s.add_choice_site("init", INIT_NAMES.len());
        s.add_choice_site("iteration", ITERATION_NAMES.len());
        s.add_accuracy_variable("stabilize_pct", 1, 100);
        s.add_accuracy_variable("max_iters", 1, 200);
        s.add_cutoff("par_cutoff", 16, 1 << 16);
        s
    }

    fn generate_input(&self, n: u64, rng: &mut SmallRng) -> Points {
        generate_points(n, rng)
    }

    fn execute(&self, input: &Points, ctx: &mut ExecCtx<'_>) -> ClusterAssignment {
        let n = input.len();
        let k = (ctx.param("k").expect("schema declares k") as usize).clamp(1, n);
        let init = ctx.choice("init").expect("schema declares init");
        let policy = ctx.choice("iteration").expect("schema declares iteration");
        let pct = ctx.param("stabilize_pct").expect("schema") as f64 / 100.0;
        let max_iters = ctx.for_enough("max_iters").expect("schema");
        let par_cutoff = ctx.param("par_cutoff").expect("schema").max(1) as usize;

        let mut seed_rng = {
            use rand::SeedableRng;
            let s: u64 = ctx.rng().gen();
            SmallRng::seed_from_u64(s)
        };
        let mut centroids = match init {
            0 => init_random(input, k, &mut seed_rng),
            _ => init_kmeanspp(input, k, &mut seed_rng, ctx),
        };
        ctx.event(INIT_NAMES[init.min(1)]);
        ctx.event(ITERATION_NAMES[policy.min(2)]);

        let mut assignments = vec![usize::MAX; n];
        // The first assignment counts every point as changed.
        let mut changed = assign(input, &centroids, &mut assignments, par_cutoff, ctx);
        let mut iters = 1u64;
        loop {
            let stop = match policy {
                0 => true, // once
                1 => changed as f64 <= pct * n as f64,
                _ => changed == 0,
            };
            if stop || iters >= max_iters.max(1) {
                break;
            }
            update_centroids(input, &mut centroids, &assignments, ctx);
            changed = assign(input, &centroids, &mut assignments, par_cutoff, ctx);
            iters += 1;
        }
        ClusterAssignment {
            centroids,
            assignments,
        }
    }

    fn accuracy(&self, input: &Points, output: &ClusterAssignment) -> f64 {
        kmeans_accuracy(input, output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_config::Value;
    use rand::SeedableRng;

    #[test]
    fn generator_matches_paper_shape() {
        let mut rng = SmallRng::seed_from_u64(1);
        let p = generate_points(2048, &mut rng);
        assert_eq!(p.len(), 2048);
        // sqrt(2048) ~ 45 clusters; points concentrate near centres, so
        // coordinates stay within the centre box plus noise.
        assert!(p.x.iter().all(|&v| v.abs() < 260.0));
    }

    fn run_with(k: i64, init: usize, policy: usize, n: u64) -> (Points, ClusterAssignment, f64) {
        let t = Clustering;
        let schema = t.schema();
        let mut config = schema.default_config();
        config.set_by_name(&schema, "k", Value::Int(k)).unwrap();
        config
            .set_by_name(
                &schema,
                "init",
                Value::Tree(pb_config::DecisionTree::single(init)),
            )
            .unwrap();
        config
            .set_by_name(
                &schema,
                "iteration",
                Value::Tree(pb_config::DecisionTree::single(policy)),
            )
            .unwrap();
        config
            .set_by_name(&schema, "max_iters", Value::Int(100))
            .unwrap();
        let mut rng = SmallRng::seed_from_u64(42);
        let input = t.generate_input(n, &mut rng);
        let mut ctx = ExecCtx::new(&schema, &config, n, 7);
        let out = t.execute(&input, &mut ctx);
        let acc = t.accuracy(&input, &out);
        (input, out, acc)
    }

    #[test]
    fn assignments_reference_valid_centroids() {
        let (_, out, _) = run_with(16, 1, 2, 256);
        assert_eq!(out.centroids.len(), 16);
        assert!(out.assignments.iter().all(|&c| c < 16));
    }

    #[test]
    fn more_clusters_and_iterations_give_higher_accuracy() {
        let (_, _, rough) = run_with(2, 0, 0, 256);
        let (_, _, good) = run_with(16, 1, 2, 256);
        assert!(
            good > rough,
            "k=16 fixed-point ({good}) should beat k=2 once ({rough})"
        );
    }

    #[test]
    fn fixed_point_policy_reaches_stability() {
        let t = Clustering;
        let schema = t.schema();
        let mut config = schema.default_config();
        config.set_by_name(&schema, "k", Value::Int(8)).unwrap();
        config
            .set_by_name(
                &schema,
                "iteration",
                Value::Tree(pb_config::DecisionTree::single(2)),
            )
            .unwrap();
        config
            .set_by_name(&schema, "max_iters", Value::Int(200))
            .unwrap();
        let mut rng = SmallRng::seed_from_u64(9);
        let input = t.generate_input(128, &mut rng);
        let mut ctx = ExecCtx::new(&schema, &config, 128, 3);
        let out = t.execute(&input, &mut ctx);
        // Re-running one assignment step changes nothing at a fixed
        // point.
        let mut assignments = out.assignments.clone();
        let mut ctx2 = ExecCtx::new(&schema, &config, 128, 3);
        let changed = assign(&input, &out.centroids, &mut assignments, 16, &mut ctx2);
        assert_eq!(changed, 0);
    }

    #[test]
    fn par_cutoff_changes_schedule_not_results() {
        let t = Clustering;
        let schema = t.schema();
        let mut rng = SmallRng::seed_from_u64(5);
        let input = t.generate_input(512, &mut rng);
        let mut outputs = Vec::new();
        // Always-parallel vs never-parallel must agree bit-for-bit on
        // the clustering itself: the cutoff tunes the scheduler, not
        // the algorithm.
        for cutoff in [16i64, 1 << 16] {
            let mut config = schema.default_config();
            config.set_by_name(&schema, "k", Value::Int(8)).unwrap();
            config
                .set_by_name(&schema, "par_cutoff", Value::Int(cutoff))
                .unwrap();
            let mut ctx = ExecCtx::new(&schema, &config, 512, 11);
            let out = t.execute(&input, &mut ctx);
            outputs.push((out, ctx.virtual_cost()));
        }
        assert_eq!(outputs[0].0, outputs[1].0);
        // The virtual cost *sees* the schedule: with a multi-thread
        // pool the always-parallel run (cutoff 16, 512 points, k = 8:
        // work well past the dispatch overhead) must be modelled
        // cheaper; with one thread both regimes are sequential.
        if pb_runtime::parallel::available_threads() >= 2 {
            assert!(
                outputs[0].1 < outputs[1].1,
                "parallel schedule should cost less: {} vs {}",
                outputs[0].1,
                outputs[1].1
            );
        } else {
            assert_eq!(outputs[0].1, outputs[1].1);
        }
    }

    #[test]
    fn k_is_clamped_to_point_count() {
        let (_, out, _) = run_with(4096, 0, 0, 16);
        assert_eq!(out.centroids.len(), 16);
    }

    #[test]
    fn accuracy_metric_matches_formula() {
        let points = Points {
            x: vec![0.0, 1.0],
            y: vec![0.0, 0.0],
        };
        let result = ClusterAssignment {
            centroids: Points {
                x: vec![0.0],
                y: vec![0.0],
            },
            assignments: vec![0, 0],
        };
        // SSD = 1, n = 2: accuracy = sqrt(4/1) = 2.
        assert!((kmeans_accuracy(&points, &result) - 2.0).abs() < 1e-12);
    }
}
