//! Zero-perturbation structured tracing for the autotuning stack.
//!
//! Every layer of the system — tuner generations, mutation/prune/merge
//! phases, arena rounds, evaluator batches, trials, pool batches and
//! jobs — can emit events into per-thread, pre-allocated ring buffers.
//! The recorders are lock-free on the hot path (one `Relaxed` head
//! bump plus a `Release` publish per event) and allocation-free after
//! their first use on a thread, so tracing can stay on during
//! measurement runs.
//!
//! The hard contract, shared with every other subsystem in this repo:
//! **tracing enabled vs disabled is bit-identical** in every tuner
//! decision and every `TunerStats` counter. Instrumentation only ever
//! *observes* — it reads clocks and counters, it never participates in
//! control flow — and when disabled it costs a single branch on a
//! static flag.
//!
//! # Deterministic merge order
//!
//! Wall-clock timestamps are nondeterministic, so they are payload,
//! never a sort key. Instead every event carries a two-level logical
//! order:
//!
//! * `seq` — a global sequence number allocated on the coordinator
//!   thread when the structural construct (span, batch) is created.
//!   Coordinator-side control flow is deterministic, so `seq` is too.
//! * `idx` — the position *within* that construct: the trial's request
//!   index in its batch, a pool job's start index. Also deterministic.
//!
//! [`collect`] merges all rings and sorts by `(seq, idx, kind, thread,
//! start_ns)`; for events produced by a deterministic run the prefix
//! `(seq, idx, kind)` is already a total order, so the merged log's
//! event sequence is identical across reruns and across sequential vs
//! pooled execution even though the timestamps differ.
//!
//! # Exporters
//!
//! * [`Trace::to_jsonl`] — one JSON object per line, in deterministic
//!   merge order. Greppable ground truth.
//! * [`Trace::to_chrome`] / [`Trace::chrome_json`] — Chrome
//!   trace-event JSON (sorted by timestamp, complete `"X"` events)
//!   that loads directly in Perfetto (<https://ui.perfetto.dev>) or
//!   `chrome://tracing`. Chunk profiles and per-phase pool-batch
//!   deltas ride along in `otherData`, which the viewers ignore but
//!   the `tuner_trace` CLI reads back.
//!
//! # VM chunk profiling
//!
//! [`record_chunk`] merges a stack-local per-opcode count array into a
//! per-thread table keyed by chunk label. The tables are `HashMap`s
//! behind per-thread mutexes that only the owning thread and the
//! (quiescent-time) snapshot ever lock, and the steady-state path —
//! `get_mut` on an existing label plus a `zip` of two slices — does
//! not allocate, preserving the VM's zero-alloc contract (pinned by
//! `tests/vm_alloc.rs` with profiling enabled).

use serde::{Deserialize, Serialize};
use std::cell::{OnceCell, RefCell, UnsafeCell};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Environment variable overriding the per-thread ring capacity
/// (events kept per thread before wrap-around). Read once per
/// process, on first ring registration; the value is rounded up to a
/// power of two so the slot index stays a single mask. Absent,
/// unparsable, or zero values fall back to [`DEFAULT_RING_CAP`].
pub const RING_CAP_ENV: &str = "PB_TRACE_RING";

/// Default events per thread kept in the ring; older events are
/// overwritten (and counted in [`Trace::dropped`]). Power of two so
/// the index mask is a single `and`.
const DEFAULT_RING_CAP: usize = 1 << 15;

/// The active per-thread ring capacity: [`RING_CAP_ENV`] if set, else
/// [`DEFAULT_RING_CAP`].
fn ring_cap() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| parse_ring_cap(std::env::var(RING_CAP_ENV).ok().as_deref()))
}

/// Pure parse half of [`ring_cap`]: round a positive integer up to a
/// power of two, defaulting on anything else.
fn parse_ring_cap(raw: Option<&str>) -> usize {
    match raw.and_then(|value| value.trim().parse::<usize>().ok()) {
        None | Some(0) => DEFAULT_RING_CAP,
        Some(cap) => cap.next_power_of_two(),
    }
}

/// Environment variable selecting the VM profiling sample period: when
/// profiling is on, only every `N`th execution of each chunk (per
/// thread) is counted, cutting the per-execution table merge to `1/N`
/// for long measurement runs. Read once per process, on the first
/// sampling decision. Absent, unparsable, or zero values fall back to
/// `1` — profile every execution, the exact pre-sampling behavior with
/// no extra bookkeeping.
pub const PROFILE_SAMPLE_ENV: &str = "PB_PROFILE_SAMPLE";

/// The active sample period: [`PROFILE_SAMPLE_ENV`] if set, else 1.
fn profile_sample() -> u64 {
    static PERIOD: OnceLock<u64> = OnceLock::new();
    *PERIOD.get_or_init(|| parse_profile_sample(std::env::var(PROFILE_SAMPLE_ENV).ok().as_deref()))
}

/// Pure parse half of [`profile_sample`]: a positive integer, or the
/// every-execution default of 1 on anything else.
fn parse_profile_sample(raw: Option<&str>) -> u64 {
    match raw.and_then(|value| value.trim().parse::<u64>().ok()) {
        None | Some(0) => 1,
        Some(n) => n,
    }
}

/// Pure sampling decision: bumps the per-chunk execution counter and
/// reports whether this execution lands on the sample grid (the 1st,
/// `n+1`th, `2n+1`th, ... executions are profiled, so a chunk that
/// runs at all always profiles at least once).
fn sample_due(counter: &mut u64, n: u64) -> bool {
    let due = counter.is_multiple_of(n);
    *counter += 1;
    due
}

// ---------------------------------------------------------------------------
// Global switches
// ---------------------------------------------------------------------------

/// Structural event recording (spans, batches, jobs).
static EVENTS: AtomicBool = AtomicBool::new(false);
/// VM per-chunk opcode profiling.
static VMPROF: AtomicBool = AtomicBool::new(false);
/// Coordinator-side structural sequence counter.
static SEQ: AtomicU64 = AtomicU64::new(0);
/// Monotonic epoch all timestamps are relative to; armed on first use.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Turns on event recording *and* VM chunk profiling.
pub fn enable() {
    // Arm the epoch before any recorder can read it, so timestamps
    // never race the first event.
    let _ = EPOCH.get_or_init(Instant::now);
    EVENTS.store(true, Ordering::Release);
    VMPROF.store(true, Ordering::Release);
}

/// Turns off event recording and VM chunk profiling. Already-recorded
/// events stay in the rings until [`collect`]/[`reset`].
pub fn disable() {
    EVENTS.store(false, Ordering::Release);
    VMPROF.store(false, Ordering::Release);
}

/// Is structural event recording on? The tracing-disabled fast path is
/// exactly this load-and-branch.
#[inline]
pub fn enabled() -> bool {
    EVENTS.load(Ordering::Relaxed)
}

/// Is VM chunk profiling on? Checked once per chunk execution, not per
/// instruction.
#[inline]
pub fn vm_profiling() -> bool {
    VMPROF.load(Ordering::Relaxed)
}

/// Should *this* execution of the chunk named `label` be profiled?
///
/// `false` whenever [`vm_profiling`] is off. When it is on, the
/// [`PROFILE_SAMPLE_ENV`] period decides: at the default period of 1
/// this is exactly `vm_profiling()` — no counters are touched — and at
/// period `N > 1` each thread counts executions per chunk label and
/// profiles every `N`th, starting with the first. The counter bump is
/// allocation-free once a label has been seen on a thread (the first
/// sighting allocates its table row, absorbed by warmup), preserving
/// the VM's zero-alloc contract under sampled profiling.
pub fn vm_profile_due(label: &str) -> bool {
    if !VMPROF.load(Ordering::Relaxed) {
        return false;
    }
    let n = profile_sample();
    if n <= 1 {
        return true;
    }
    SAMPLE_COUNTERS.with(|counters| {
        let mut counters = counters.borrow_mut();
        match counters.get_mut(label) {
            Some(counter) => sample_due(counter, n),
            None => {
                let mut counter = 0;
                let due = sample_due(&mut counter, n);
                counters.insert(label.to_owned(), counter);
                due
            }
        }
    })
}

/// Toggles VM chunk profiling independently of event recording (used
/// by the allocation test, which wants profiling without spans).
pub fn set_vm_profiling(on: bool) {
    if on {
        let _ = EPOCH.get_or_init(Instant::now);
    }
    VMPROF.store(on, Ordering::Release);
}

/// Allocates the next structural sequence number. Only meaningful on
/// deterministic (coordinator) control flow; worker-side events reuse
/// the sequence of the construct that spawned them.
#[inline]
pub fn next_seq() -> u64 {
    SEQ.fetch_add(1, Ordering::Relaxed) + 1
}

/// Nanoseconds since the trace epoch.
#[inline]
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------------
// Event model
// ---------------------------------------------------------------------------

/// What an [`Event`] describes. Listed coordinator-outermost first;
/// the discriminant doubles as the tie-breaking sort key after
/// `(seq, idx)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum EventKind {
    /// One whole `tune_outcome` run. `a`=seed, `b`=input sizes,
    /// `c..d`=pool delta (tasks, dispatched batches).
    TuningRun,
    /// One input size's generations. `a`=n, `b..d`=pool delta.
    Generation,
    /// `Population::test_all`. Phase args: `a`=dispatched, `b`=inline,
    /// `c`=tasks, `d`=max batch — the pool delta over the phase.
    PhaseTest,
    /// Random-mutation plan+execute (children's trial batch).
    PhaseMutate,
    /// Child-vs-parent arena merge.
    PhaseMerge,
    /// Hill-climbing guided mutation.
    PhaseGuided,
    /// Tournament pruning.
    PhasePrune,
    /// One arena comparison round that issued a batch. `a`=planned
    /// requests, `b`=candidates drawn, `c`=live contests.
    ArenaRound,
    /// One `Evaluator::run_batch`. `a`=requests, `b`=executed misses,
    /// `c`=cache hits, `d`=coalesced duplicates.
    EvalBatch,
    /// One trial execution. `idx` is its request index within the
    /// batch. `a`=input size, `b`=trial seed, `c`=virtual cost.
    Trial,
    /// One pool batch. `a`=items, `b`=job chunks, `c`=1 if dispatched
    /// to workers, 0 if inline; `d`=active shard count when dispatched.
    PoolBatch,
    /// One executed pool job (contiguous item range). `idx`=`a`=range
    /// start, `b`=range end.
    PoolJob,
    /// A job taken by stealing rather than from the thread's own
    /// shard injector (instant event). `a`=range start, `b`=range
    /// end, `c`=locality: 0 = within-shard (an own-shard peer's
    /// deque), 1 = cross-shard (a remote injector or remote deque).
    PoolSteal,
}

impl EventKind {
    /// Stable lower-snake name used by both exporters.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::TuningRun => "tuning_run",
            EventKind::Generation => "generation",
            EventKind::PhaseTest => "phase_test",
            EventKind::PhaseMutate => "phase_mutate",
            EventKind::PhaseMerge => "phase_merge",
            EventKind::PhaseGuided => "phase_guided",
            EventKind::PhasePrune => "phase_prune",
            EventKind::ArenaRound => "arena_round",
            EventKind::EvalBatch => "eval_batch",
            EventKind::Trial => "trial",
            EventKind::PoolBatch => "pool_batch",
            EventKind::PoolJob => "pool_job",
            EventKind::PoolSteal => "pool_steal",
        }
    }

    /// Chrome trace category.
    pub fn category(self) -> &'static str {
        match self {
            EventKind::PoolBatch | EventKind::PoolJob | EventKind::PoolSteal => "pool",
            EventKind::EvalBatch | EventKind::Trial => "eval",
            _ => "tuner",
        }
    }

    /// The five tuner phases, in their in-generation order.
    pub const PHASES: [EventKind; 5] = [
        EventKind::PhaseTest,
        EventKind::PhaseMutate,
        EventKind::PhaseMerge,
        EventKind::PhaseGuided,
        EventKind::PhasePrune,
    ];
}

/// One recorded event. Fixed-size and `Copy` so ring slots never
/// allocate or drop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// Structural (deterministic) major order — see module docs.
    pub seq: u64,
    /// Deterministic minor order within `seq`.
    pub idx: u64,
    /// Recording thread's trace-local id (0 = first thread seen).
    pub thread: u32,
    /// Span start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Span duration in nanoseconds (0 for instant events).
    pub dur_ns: u64,
    /// Kind-specific payload.
    pub a: u64,
    /// Kind-specific payload.
    pub b: u64,
    /// Kind-specific payload.
    pub c: u64,
    /// Kind-specific payload.
    pub d: u64,
}

impl Event {
    /// A span that started at `start_ns` (from [`now_ns`]) and ends
    /// now. `thread` is stamped by [`record`].
    pub fn span(kind: EventKind, seq: u64, idx: u64, start_ns: u64, args: [u64; 4]) -> Event {
        Event {
            kind,
            seq,
            idx,
            thread: 0,
            start_ns,
            dur_ns: now_ns().saturating_sub(start_ns),
            a: args[0],
            b: args[1],
            c: args[2],
            d: args[3],
        }
    }

    /// A zero-duration event happening now.
    pub fn instant(kind: EventKind, seq: u64, idx: u64, args: [u64; 4]) -> Event {
        Event {
            kind,
            seq,
            idx,
            thread: 0,
            start_ns: now_ns(),
            dur_ns: 0,
            a: args[0],
            b: args[1],
            c: args[2],
            d: args[3],
        }
    }

    const ZERO: Event = Event {
        kind: EventKind::TuningRun,
        seq: 0,
        idx: 0,
        thread: 0,
        start_ns: 0,
        dur_ns: 0,
        a: 0,
        b: 0,
        c: 0,
        d: 0,
    };
}

// ---------------------------------------------------------------------------
// Per-thread ring recorders
// ---------------------------------------------------------------------------

/// A single-producer ring: the owning thread writes, [`collect`] reads
/// at quiescent points (after a run, never concurrent with tuning).
struct Ring {
    /// Trace-local thread id.
    thread: u32,
    /// Total events ever written; slot = `head & (slots.len() - 1)`
    /// (capacity from [`ring_cap`], always a power of two).
    /// `Release` on write, `Acquire` on collect, so the collector sees
    /// fully-written slots.
    head: AtomicU64,
    slots: Box<[UnsafeCell<Event>]>,
}

// SAFETY: only the owning thread writes (thread-local handle); readers
// synchronize through `head` and only run at quiescent points.
unsafe impl Send for Ring {}
unsafe impl Sync for Ring {}

/// One thread's chunk-profile table, shared with the collector.
type SharedChunkTable = Arc<Mutex<HashMap<String, ChunkCounts>>>;

static RINGS: Mutex<Vec<Arc<Ring>>> = Mutex::new(Vec::new());
static NEXT_THREAD: AtomicU32 = AtomicU32::new(0);
static CHUNK_TABLES: Mutex<Vec<SharedChunkTable>> = Mutex::new(Vec::new());

thread_local! {
    static RECORDER: OnceCell<Arc<Ring>> = const { OnceCell::new() };
    static CHUNK_TABLE: OnceCell<SharedChunkTable> = const { OnceCell::new() };
    /// Per-chunk execution counters for sampled profiling
    /// ([`vm_profile_due`]); purely thread-local, never collected.
    static SAMPLE_COUNTERS: RefCell<HashMap<String, u64>> = RefCell::new(HashMap::new());
}

fn register_ring() -> Arc<Ring> {
    let ring = Arc::new(Ring {
        thread: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
        head: AtomicU64::new(0),
        slots: (0..ring_cap())
            .map(|_| UnsafeCell::new(Event::ZERO))
            .collect(),
    });
    RINGS.lock().unwrap().push(ring.clone());
    ring
}

/// Records an event into this thread's ring, stamping the thread id.
/// Callers gate on [`enabled`] themselves (usually they already did,
/// to skip building the event at all).
pub fn record(ev: Event) {
    RECORDER.with(|cell| {
        let ring = cell.get_or_init(register_ring);
        let n = ring.head.load(Ordering::Relaxed);
        let slot = ring.slots[(n as usize) & (ring.slots.len() - 1)].get();
        // SAFETY: this thread is the ring's only writer; the slot is
        // below the published head, so no reader touches it yet.
        unsafe {
            slot.write(Event {
                thread: ring.thread,
                ..ev
            })
        };
        ring.head.store(n + 1, Ordering::Release);
    });
}

// ---------------------------------------------------------------------------
// VM chunk profiling
// ---------------------------------------------------------------------------

/// Accumulated counters for one chunk on one thread.
#[derive(Debug, Clone)]
struct ChunkCounts {
    executions: u64,
    opcodes: Vec<u64>,
}

/// Merges one chunk execution's per-opcode counts into this thread's
/// table. The steady-state path (label already present) performs no
/// heap allocation; the first execution of a chunk on a thread
/// allocates its table row, which warmup runs absorb.
pub fn record_chunk(label: &str, opcodes: &[u64]) {
    CHUNK_TABLE.with(|cell| {
        let table = cell.get_or_init(|| {
            let t = Arc::new(Mutex::new(HashMap::new()));
            CHUNK_TABLES.lock().unwrap().push(t.clone());
            t
        });
        let mut t = table.lock().unwrap();
        match t.get_mut(label) {
            Some(counts) => {
                counts.executions += 1;
                for (acc, &n) in counts.opcodes.iter_mut().zip(opcodes) {
                    *acc += n;
                }
            }
            None => {
                t.insert(
                    label.to_owned(),
                    ChunkCounts {
                        executions: 1,
                        opcodes: opcodes.to_vec(),
                    },
                );
            }
        }
    });
}

/// Per-chunk execution totals, merged across threads. Opcode indices
/// follow `pb_lang`'s opcode table (this crate stores them raw and
/// leaves naming to consumers, keeping the dependency arrow pointing
/// the right way).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkProfile {
    /// Chunk label, `transform::rN`.
    pub label: String,
    /// Times the chunk's dispatch loop ran.
    pub executions: u64,
    /// Executed-instruction count per opcode index.
    pub opcodes: Vec<u64>,
}

impl ChunkProfile {
    /// Total instructions executed in this chunk.
    pub fn instructions(&self) -> u64 {
        self.opcodes.iter().sum()
    }
}

/// Snapshot of all threads' chunk tables, merged and sorted by label.
pub fn chunk_snapshot() -> Vec<ChunkProfile> {
    let tables = CHUNK_TABLES.lock().unwrap().clone();
    let mut merged: BTreeMap<String, ChunkCounts> = BTreeMap::new();
    for table in &tables {
        for (label, counts) in table.lock().unwrap().iter() {
            match merged.get_mut(label) {
                Some(m) => {
                    m.executions += counts.executions;
                    if m.opcodes.len() < counts.opcodes.len() {
                        m.opcodes.resize(counts.opcodes.len(), 0);
                    }
                    for (acc, &n) in m.opcodes.iter_mut().zip(&counts.opcodes) {
                        *acc += n;
                    }
                }
                None => {
                    merged.insert(label.clone(), counts.clone());
                }
            }
        }
    }
    merged
        .into_iter()
        .map(|(label, c)| ChunkProfile {
            label,
            executions: c.executions,
            opcodes: c.opcodes,
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Collection
// ---------------------------------------------------------------------------

/// A merged, deterministically ordered event log plus chunk profiles.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Events sorted by `(seq, idx, kind, thread, start_ns)`.
    pub events: Vec<Event>,
    /// Merged VM chunk profiles, sorted by label.
    pub chunks: Vec<ChunkProfile>,
    /// Events lost to ring wrap-around (oldest-first per thread).
    pub dropped: u64,
}

/// Drains nothing, copies everything: merges all ring contents and
/// chunk tables into a [`Trace`]. Call at a quiescent point (no tuning
/// or traced pool work in flight).
pub fn collect() -> Trace {
    let rings = RINGS.lock().unwrap().clone();
    let mut events = Vec::new();
    let mut dropped = 0u64;
    for ring in &rings {
        let head = ring.head.load(Ordering::Acquire);
        let kept = head.min(ring.slots.len() as u64);
        dropped += head - kept;
        for i in (head - kept)..head {
            // SAFETY: slots below the Acquire-loaded head are fully
            // written, and we only collect at quiescent points.
            events.push(unsafe { *ring.slots[(i as usize) & (ring.slots.len() - 1)].get() });
        }
    }
    events.sort_by(|x, y| {
        (x.seq, x.idx, x.kind, x.thread, x.start_ns)
            .cmp(&(y.seq, y.idx, y.kind, y.thread, y.start_ns))
    });
    Trace {
        events,
        chunks: chunk_snapshot(),
        dropped,
    }
}

/// Clears all rings, chunk tables, and the sequence counter. Only call
/// at a quiescent point.
pub fn reset() {
    for ring in RINGS.lock().unwrap().iter() {
        ring.head.store(0, Ordering::Release);
    }
    for table in CHUNK_TABLES.lock().unwrap().iter() {
        table.lock().unwrap().clear();
    }
    SEQ.store(0, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

/// One line of the JSONL export.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JsonlEvent {
    /// [`EventKind::name`].
    pub kind: String,
    /// Structural sequence.
    pub seq: u64,
    /// Within-sequence index.
    pub idx: u64,
    /// Recording thread.
    pub thread: u32,
    /// Start, ns since epoch.
    pub start_ns: u64,
    /// Duration, ns.
    pub dur_ns: u64,
    /// Payload.
    pub a: u64,
    /// Payload.
    pub b: u64,
    /// Payload.
    pub c: u64,
    /// Payload.
    pub d: u64,
}

/// `args` of a Chrome trace event: the logical order and raw payload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChromeArgs {
    /// Structural sequence.
    pub seq: u64,
    /// Within-sequence index.
    pub idx: u64,
    /// Payload.
    pub a: u64,
    /// Payload.
    pub b: u64,
    /// Payload.
    pub c: u64,
    /// Payload.
    pub d: u64,
}

/// One Chrome trace-event (`ph:"X"` complete event, µs timestamps).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChromeEvent {
    /// Event name ([`EventKind::name`]).
    pub name: String,
    /// Category (`tuner`/`eval`/`pool`).
    pub cat: String,
    /// Phase — always `"X"` (complete event with duration).
    pub ph: String,
    /// Process id (always 1; one trace = one process).
    pub pid: u32,
    /// Thread lane = trace-local thread id.
    pub tid: u32,
    /// Start in microseconds since the trace epoch.
    pub ts: f64,
    /// Duration in microseconds.
    pub dur: f64,
    /// Logical order + payload.
    pub args: ChromeArgs,
}

/// Per-phase pool-batch delta summary, precomputed at export time so
/// trace consumers need no event-model knowledge.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PhaseDelta {
    /// Phase name (`phase_test`, `phase_mutate`, ...).
    pub phase: String,
    /// Phase span occurrences across the trace.
    pub count: u64,
    /// Summed wall time of the phase spans, ns.
    pub wall_ns: u64,
    /// Pool batches dispatched to workers during the phase.
    pub dispatched: u64,
    /// Pool batches run inline during the phase.
    pub inline: u64,
    /// Pool tasks executed during the phase.
    pub tasks: u64,
    /// Largest single dispatched batch seen in the phase.
    pub max_batch: u64,
}

/// Non-event payload of the Chrome export (ignored by viewers, read by
/// the `tuner_trace` CLI).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChromeMeta {
    /// Events lost to ring wrap-around.
    pub dropped: u64,
    /// Merged VM chunk profiles.
    pub chunks: Vec<ChunkProfile>,
    /// Per-phase pool-batch deltas.
    pub phases: Vec<PhaseDelta>,
}

/// The whole Chrome trace file (object form, Perfetto-loadable).
#[derive(Debug, Clone, Serialize, Deserialize)]
#[allow(non_snake_case)]
pub struct ChromeTrace {
    /// Events sorted by `ts` (monotonic non-decreasing).
    pub traceEvents: Vec<ChromeEvent>,
    /// Display hint for viewers.
    pub displayTimeUnit: String,
    /// Chunk profiles + phase summaries.
    pub otherData: ChromeMeta,
}

impl Trace {
    /// JSONL export in deterministic merge order, one event per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            let line = JsonlEvent {
                kind: e.kind.name().to_owned(),
                seq: e.seq,
                idx: e.idx,
                thread: e.thread,
                start_ns: e.start_ns,
                dur_ns: e.dur_ns,
                a: e.a,
                b: e.b,
                c: e.c,
                d: e.d,
            };
            out.push_str(&serde_json::to_string(&line).expect("event serialization is total"));
            out.push('\n');
        }
        out
    }

    /// Per-phase pool-batch deltas aggregated from this trace's phase
    /// spans (args: a=dispatched, b=inline, c=tasks, d=max batch).
    pub fn phase_deltas(&self) -> Vec<PhaseDelta> {
        let mut out = Vec::new();
        for kind in EventKind::PHASES {
            let mut delta = PhaseDelta {
                phase: kind.name().to_owned(),
                count: 0,
                wall_ns: 0,
                dispatched: 0,
                inline: 0,
                tasks: 0,
                max_batch: 0,
            };
            for e in self.events.iter().filter(|e| e.kind == kind) {
                delta.count += 1;
                delta.wall_ns += e.dur_ns;
                delta.dispatched += e.a;
                delta.inline += e.b;
                delta.tasks += e.c;
                delta.max_batch = delta.max_batch.max(e.d);
            }
            if delta.count > 0 {
                out.push(delta);
            }
        }
        out
    }

    /// Chrome trace-event form: events sorted by timestamp, chunk
    /// profiles and phase deltas in `otherData`.
    pub fn to_chrome(&self) -> ChromeTrace {
        let mut events: Vec<&Event> = self.events.iter().collect();
        events.sort_by(|x, y| {
            (x.start_ns, x.seq, x.idx, x.kind).cmp(&(y.start_ns, y.seq, y.idx, y.kind))
        });
        let trace_events = events
            .iter()
            .map(|e| ChromeEvent {
                name: e.kind.name().to_owned(),
                cat: e.kind.category().to_owned(),
                ph: "X".to_owned(),
                pid: 1,
                tid: e.thread,
                ts: e.start_ns as f64 / 1000.0,
                dur: e.dur_ns as f64 / 1000.0,
                args: ChromeArgs {
                    seq: e.seq,
                    idx: e.idx,
                    a: e.a,
                    b: e.b,
                    c: e.c,
                    d: e.d,
                },
            })
            .collect();
        ChromeTrace {
            traceEvents: trace_events,
            displayTimeUnit: "ms".to_owned(),
            otherData: ChromeMeta {
                dropped: self.dropped,
                chunks: self.chunks.clone(),
                phases: self.phase_deltas(),
            },
        }
    }

    /// [`Trace::to_chrome`] serialized to a JSON string.
    pub fn chrome_json(&self) -> String {
        serde_json::to_string(&self.to_chrome()).expect("trace serialization is total")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, seq: u64, idx: u64, start_ns: u64, dur_ns: u64) -> Event {
        Event {
            kind,
            seq,
            idx,
            thread: 0,
            start_ns,
            dur_ns,
            a: 1,
            b: 2,
            c: 3,
            d: 4,
        }
    }

    #[test]
    fn ring_cap_parses_rounds_and_defaults() {
        assert_eq!(parse_ring_cap(None), DEFAULT_RING_CAP);
        assert_eq!(parse_ring_cap(Some("")), DEFAULT_RING_CAP);
        assert_eq!(parse_ring_cap(Some("not a number")), DEFAULT_RING_CAP);
        assert_eq!(parse_ring_cap(Some("0")), DEFAULT_RING_CAP);
        assert_eq!(parse_ring_cap(Some("1")), 1);
        assert_eq!(parse_ring_cap(Some("4096")), 4096);
        assert_eq!(parse_ring_cap(Some(" 4096 ")), 4096, "whitespace tolerated");
        assert_eq!(
            parse_ring_cap(Some("5000")),
            8192,
            "rounds up to a power of two"
        );
    }

    #[test]
    fn profile_sample_parses_and_defaults() {
        assert_eq!(parse_profile_sample(None), 1);
        assert_eq!(parse_profile_sample(Some("")), 1);
        assert_eq!(parse_profile_sample(Some("not a number")), 1);
        assert_eq!(parse_profile_sample(Some("0")), 1);
        assert_eq!(parse_profile_sample(Some("1")), 1);
        assert_eq!(
            parse_profile_sample(Some(" 16 ")),
            16,
            "whitespace tolerated"
        );
        assert_eq!(parse_profile_sample(Some("1000")), 1000);
    }

    #[test]
    fn sample_due_hits_every_nth_starting_with_the_first() {
        let mut counter = 0;
        let hits: Vec<bool> = (0..7).map(|_| sample_due(&mut counter, 3)).collect();
        assert_eq!(hits, [true, false, false, true, false, false, true]);
        assert_eq!(counter, 7);

        // Period 1 profiles everything.
        let mut counter = 0;
        assert!((0..4).all(|_| sample_due(&mut counter, 1)));
    }

    #[test]
    fn vm_profile_due_mirrors_the_profiling_switch_at_default_period() {
        // PB_PROFILE_SAMPLE is unset in the test process, so the
        // period is 1 and the decision is exactly the global switch.
        set_vm_profiling(false);
        assert!(!vm_profile_due("t::r0"));
        set_vm_profiling(true);
        assert!(vm_profile_due("t::r0"));
        assert!(vm_profile_due("t::r0"), "period 1 samples every execution");
        set_vm_profiling(false);
    }

    #[test]
    fn tracing_is_off_by_default() {
        // Other tests in this module flip VMPROF/EVENTS; this only
        // checks the initial state indirectly via a fresh pair of
        // enable/disable transitions.
        disable();
        assert!(!enabled());
        assert!(!vm_profiling());
        enable();
        assert!(enabled());
        assert!(vm_profiling());
        disable();
    }

    #[test]
    fn record_and_collect_orders_by_logical_sequence_not_time() {
        // Later wall-clock, earlier sequence: logical order must win.
        record(ev(EventKind::Trial, 10, 1, 999_999, 5));
        record(ev(EventKind::Trial, 10, 0, 999_998, 5));
        record(ev(EventKind::EvalBatch, 9, 0, 1_000_000, 50));
        let t = collect();
        let mine: Vec<&Event> = t
            .events
            .iter()
            .filter(|e| e.seq == 9 || e.seq == 10)
            .collect();
        assert_eq!(mine.len(), 3);
        assert_eq!(mine[0].kind, EventKind::EvalBatch);
        assert_eq!((mine[1].seq, mine[1].idx), (10, 0));
        assert_eq!((mine[2].seq, mine[2].idx), (10, 1));
    }

    #[test]
    fn chunk_profiles_merge_per_label() {
        record_chunk("t::r0", &[1, 0, 2]);
        record_chunk("t::r0", &[1, 1, 0]);
        let snap = chunk_snapshot();
        let c = snap.iter().find(|c| c.label == "t::r0").unwrap();
        assert_eq!(c.executions, 2);
        assert_eq!(c.opcodes, vec![2, 1, 2]);
        assert_eq!(c.instructions(), 5);
    }

    #[test]
    fn chrome_export_is_timestamp_sorted_and_round_trips() {
        let trace = Trace {
            events: vec![
                ev(EventKind::PhaseMutate, 2, 0, 500, 100),
                ev(EventKind::TuningRun, 1, 0, 0, 1000),
                ev(EventKind::PhasePrune, 3, 0, 700, 100),
            ],
            chunks: vec![ChunkProfile {
                label: "t::r0".into(),
                executions: 7,
                opcodes: vec![3, 0, 4],
            }],
            dropped: 0,
        };
        let json = trace.chrome_json();
        let parsed: ChromeTrace = serde_json::from_str(&json).expect("round-trips");
        assert_eq!(parsed.traceEvents.len(), 3);
        for pair in parsed.traceEvents.windows(2) {
            assert!(pair[0].ts <= pair[1].ts, "timestamps must be monotonic");
        }
        assert_eq!(parsed.otherData.chunks.len(), 1);
        assert_eq!(parsed.otherData.chunks[0].executions, 7);
        // Both phase kinds present with their pool-delta args summed.
        let phases = &parsed.otherData.phases;
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].phase, "phase_mutate");
        assert_eq!(phases[0].dispatched, 1);
        assert_eq!(phases[0].tasks, 3);
        assert_eq!(phases[1].phase, "phase_prune");
    }

    #[test]
    fn jsonl_has_one_line_per_event() {
        let trace = Trace {
            events: vec![
                ev(EventKind::Trial, 1, 0, 0, 10),
                ev(EventKind::Trial, 1, 1, 5, 10),
            ],
            chunks: Vec::new(),
            dropped: 0,
        };
        let jsonl = trace.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        let first: JsonlEvent = serde_json::from_str(lines[0]).expect("parses");
        assert_eq!(first.kind, "trial");
        assert_eq!(first.dur_ns, 10);
    }
}
