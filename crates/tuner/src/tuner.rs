//! The top-level autotuning loop (Figure 5 of the paper).
//!
//! ```text
//! population = [...]
//! mutators   = [...]
//! for inputsize in [1, 2, 4, 8, 16, ..., N]:
//!     testPopulation(population, inputsize)
//!     for round in [1, 2, 3, ..., R]:
//!         randomMutation(population, mutators, inputsize)
//!         if accuracyTargetsNotReached(population):
//!             guidedMutation(population, mutators, inputsize)
//!         prune(population)
//! ```
//!
//! The exponentially growing input-size schedule "naturally exploits any
//! optimal substructure inherent to most programs" (§5.1); random
//! mutation expands the population (§5.5.2); guided mutation hill-climbs
//! on accuracy variables when targets are unmet (§5.5.3); pruning keeps
//! the fastest `K` per accuracy bin (§5.5.4).

use crate::candidate::Candidate;
use crate::exec::{EvalMode, Evaluator, FaultPolicy, MemoPolicy};
use crate::mutators::MutatorPool;
use crate::population::Population;
use pb_config::{AccuracyBins, Config, Schema, TunableKind, Value};
use pb_runtime::pool::{Pool, PoolBatchStats};
use pb_runtime::{TrialOutcome, TrialRunner, TunedEntry, TunedProgram};
use pb_stats::{Comparator, ComparatorConfig};
use pb_trace::{Event, EventKind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Errors the autotuner can report.
#[derive(Debug, Clone, PartialEq)]
pub enum TunerError {
    /// Guided mutation failed to construct any candidate meeting an
    /// accuracy bin's target (§5.5.3: "If the required accuracy cannot
    /// be attained … an error is reported to the user").
    AccuracyUnreachable {
        /// The unmet bin target.
        target: f64,
        /// The best accuracy any candidate achieved at the final size.
        best_achieved: f64,
    },
    /// The transform declares no tunables, so there is nothing to tune.
    NothingToTune,
}

impl fmt::Display for TunerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TunerError::AccuracyUnreachable {
                target,
                best_achieved,
            } => write!(
                f,
                "guided mutation could not reach accuracy target {target} (best achieved {best_achieved})"
            ),
            TunerError::NothingToTune => {
                write!(f, "the transform's schema declares no tunables")
            }
        }
    }
}

impl std::error::Error for TunerError {}

/// Tuning-run parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunerOptions {
    /// First input size in the exponential schedule.
    pub initial_size: u64,
    /// Final (largest) input size; training stops after this size.
    pub max_size: u64,
    /// Rounds of mutation + pruning per input size (`R` in Figure 5).
    pub rounds_per_size: usize,
    /// Random-mutation attempts per round.
    pub mutation_attempts: usize,
    /// `K`: candidates kept per accuracy bin when pruning.
    pub keep_per_bin: usize,
    /// Minimum trials before any candidate is compared.
    pub min_trials: u64,
    /// Adaptive-comparison settings (§5.5.1).
    pub comparator: ComparatorConfig,
    /// Hill-climbing step budget for guided mutation.
    pub guided_max_steps: usize,
    /// Extra randomly mutated candidates seeded into the initial
    /// population alongside the schema default.
    pub initial_random: usize,
    /// Master seed for the tuner's own randomness.
    pub seed: u64,
    /// Execute trial batches on the work-stealing pool. `false` forces
    /// sequential execution; results are bit-identical either way
    /// (trial seeds are deterministic and merge order is fixed), so
    /// this is a performance switch and a determinism-test lever, not
    /// a semantic one.
    pub parallel_trials: bool,
    /// Memoize trial outcomes by `(config fingerprint, n, seed)`.
    /// Only takes effect when the runner reports
    /// [`TrialRunner::deterministic`] trials (the virtual cost
    /// model); wall-clock runners are never memoized, since their
    /// repeated measurements genuinely differ (see
    /// [`MemoPolicy`](crate::exec::MemoPolicy)).
    pub memoize_trials: bool,
    /// Retries granted to a faulting trial (panic, soft-deadline
    /// overrun, non-finite cost) before it is quarantined with the
    /// deterministic worst-cost sentinel. See
    /// [`FaultPolicy`](crate::exec::FaultPolicy).
    pub max_trial_retries: u32,
    /// Soft per-attempt deadline for trial execution; `None` disables
    /// the check (and its clock reads).
    pub trial_deadline: Option<std::time::Duration>,
}

impl Default for TunerOptions {
    fn default() -> Self {
        let comparator = ComparatorConfig::default();
        TunerOptions {
            initial_size: 1,
            max_size: 4096,
            rounds_per_size: 6,
            mutation_attempts: 16,
            keep_per_bin: 3,
            min_trials: comparator.min_trials,
            comparator,
            guided_max_steps: 64,
            initial_random: 3,
            seed: 0x5EED,
            parallel_trials: true,
            memoize_trials: true,
            max_trial_retries: 2,
            trial_deadline: None,
        }
    }
}

impl TunerOptions {
    /// A reduced-effort preset for tests, examples, and quick tuning
    /// runs: fewer rounds, fewer trials, smaller population.
    pub fn fast_preset(max_size: u64, seed: u64) -> Self {
        let comparator = ComparatorConfig {
            min_trials: 2,
            max_trials: 8,
            ..ComparatorConfig::default()
        };
        TunerOptions {
            initial_size: 2.min(max_size),
            max_size,
            rounds_per_size: 3,
            mutation_attempts: 8,
            keep_per_bin: 2,
            min_trials: 2,
            comparator,
            guided_max_steps: 48,
            initial_random: 2,
            seed,
            parallel_trials: true,
            memoize_trials: true,
            max_trial_retries: 2,
            trial_deadline: None,
        }
    }

    /// The exponential input-size schedule `[s, 2s, 4s, …, N]`.
    pub fn size_schedule(&self) -> Vec<u64> {
        let mut sizes = Vec::new();
        let mut n = self.initial_size.max(1);
        while n < self.max_size {
            sizes.push(n);
            n = n.saturating_mul(2);
        }
        sizes.push(self.max_size);
        sizes.dedup();
        sizes
    }
}

/// Counters describing what a tuning run did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TunerStats {
    /// Total trial executions (the dominant cost, §5.5.1).
    pub trials: u64,
    /// Children created by random mutation.
    pub children_created: u64,
    /// Children that survived the parent comparison.
    pub children_accepted: u64,
    /// Guided-mutation invocations.
    pub guided_runs: u64,
    /// Candidates removed by pruning.
    pub pruned: u64,
    /// Trial requests served from the memo cache without executing
    /// (entries produced earlier in this run).
    pub cache_hits: u64,
    /// Trial requests served by entries preloaded from a cross-run
    /// sidecar (see [`Autotuner::with_trial_cache`]).
    pub cache_hits_warm: u64,
    /// Trial requests that executed a trial (equals `trials` when
    /// memoization is on and all execution flows through the
    /// evaluator).
    pub cache_misses: u64,
    /// Trial requests that duplicated another request in the same
    /// batch and shared its execution (neither hits nor misses).
    pub cache_coalesced: u64,
    /// Pruning arena rounds that issued a trial batch (§5.5.4 on the
    /// pool).
    pub prune_rounds: u64,
    /// Comparator-requested trial draws executed via pruning batches.
    pub prune_draws: u64,
    /// Largest single pruning batch.
    pub prune_max_batch: u64,
    /// Child-vs-parent merge arena rounds that issued a trial batch.
    pub merge_rounds: u64,
    /// Comparator-requested trial draws executed via merge batches.
    pub merge_draws: u64,
    /// Largest single merge batch.
    pub merge_max_batch: u64,
    /// Pair-verdict memo lookups across all arena sessions.
    pub pair_memo_queries: u64,
    /// Lookups answered from a recorded verdict — comparisons neither
    /// re-decided nor re-tested.
    pub pair_memo_hits: u64,
    /// Trial attempts that panicked (caught by the evaluator's fault
    /// isolation, never propagated).
    pub trial_panics: u64,
    /// Trial attempts that exceeded the soft deadline
    /// ([`TunerOptions::trial_deadline`]).
    pub trial_timeouts: u64,
    /// Trial attempts that reported a non-finite cost.
    pub trial_nonfinite: u64,
    /// Trial re-executions triggered by faulting attempts.
    pub trial_retries: u64,
    /// Trials quarantined after exhausting their retries (recorded
    /// with the deterministic worst-cost sentinel).
    pub quarantined: u64,
}

impl TunerStats {
    /// This run's *decision* counters: everything that describes what
    /// the tuner decided, with the raw attempt/fault counters zeroed
    /// out. Two runs whose decision images are equal made identical
    /// choices even if one needed retries to get there — the chaos
    /// contract (`tests/fault_injection.rs`) compares a fault-injected
    /// run against a fault-free run this way, since retried attempts
    /// legitimately inflate `trials` and the fault counters without
    /// changing a single verdict. `quarantined` is *kept*: a
    /// quarantine replaces an outcome and therefore is a decision
    /// input.
    pub fn decision_image(&self) -> TunerStats {
        TunerStats {
            trials: 0,
            trial_panics: 0,
            trial_timeouts: 0,
            trial_nonfinite: 0,
            trial_retries: 0,
            ..*self
        }
    }
}

/// Work-stealing-pool traffic windowed to one tuning run.
///
/// Kept out of [`TunerStats`] deliberately: sequential and parallel
/// runs of the same seed make identical tuner decisions but different
/// pool traffic, and `TunerStats` equality is the determinism
/// contract (`tests/parallel_determinism.rs`).
#[derive(Debug, Clone, Copy, Default)]
pub struct RunPoolStats {
    /// Every batch the global pool ran during the tuning run,
    /// including kernel-level batches spawned inside trial executions.
    pub total: PoolBatchStats,
    /// Batches the pool ran while trial batches were executing — the
    /// evaluator's windows around [`Evaluator`] trial execution. The
    /// remainder (`total - trial`) is kernel traffic outside trial
    /// windows.
    pub trial: PoolBatchStats,
}

/// A tuned program plus the run's statistics and frontier summary.
#[derive(Debug)]
pub struct TuningOutcome {
    /// The per-bin winning configurations.
    pub program: TunedProgram,
    /// Run counters.
    pub stats: TunerStats,
    /// Population size at the end of training.
    pub final_population: usize,
    /// Pool batch traffic windowed to this run (not part of the
    /// determinism contract — see [`RunPoolStats`]).
    pub pool: RunPoolStats,
}

/// An in-flight tracing span around one tuner phase: captures the
/// sequence number, start time, and a pool-stats snapshot at `begin`,
/// and records the span — with the phase's pool batch delta as its
/// args — at `end`. `None` when tracing is disabled, so the off path
/// is a single branch.
struct PhaseSpan {
    kind: EventKind,
    seq: u64,
    idx: u64,
    start_ns: u64,
    pool_before: PoolBatchStats,
}

impl PhaseSpan {
    fn begin(kind: EventKind, idx: u64) -> Option<PhaseSpan> {
        if !pb_trace::enabled() {
            return None;
        }
        Some(PhaseSpan {
            kind,
            seq: pb_trace::next_seq(),
            idx,
            start_ns: pb_trace::now_ns(),
            pool_before: Pool::global().batch_stats(),
        })
    }

    fn end(span: Option<PhaseSpan>) {
        let Some(span) = span else { return };
        let delta = Pool::global().batch_stats().delta_since(&span.pool_before);
        pb_trace::record(Event::span(
            span.kind,
            span.seq,
            span.idx,
            span.start_ns,
            [delta.dispatched, delta.inline, delta.tasks, delta.max_batch],
        ));
    }
}

/// Wraps a [`TrialRunner`] to count trial executions.
struct CountingRunner<'a> {
    inner: &'a dyn TrialRunner,
    trials: AtomicU64,
}

impl<'a> CountingRunner<'a> {
    fn new(inner: &'a dyn TrialRunner) -> Self {
        CountingRunner {
            inner,
            trials: AtomicU64::new(0),
        }
    }

    fn count(&self) -> u64 {
        self.trials.load(Ordering::Relaxed)
    }
}

impl TrialRunner for CountingRunner<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }
    fn deterministic(&self) -> bool {
        self.inner.deterministic()
    }
    fn run_trial(&self, config: &Config, n: u64, seed: u64) -> TrialOutcome {
        self.trials.fetch_add(1, Ordering::Relaxed);
        self.inner.run_trial(config, n, seed)
    }
    fn run_traced(
        &self,
        config: &Config,
        n: u64,
        seed: u64,
    ) -> (TrialOutcome, pb_runtime::TraceNode) {
        self.trials.fetch_add(1, Ordering::Relaxed);
        self.inner.run_traced(config, n, seed)
    }
}

/// The accuracy-aware genetic autotuner (§5).
///
/// See the crate-level example for end-to-end usage.
pub struct Autotuner<'a> {
    runner: &'a dyn TrialRunner,
    bins: AccuracyBins,
    options: TunerOptions,
    trial_cache: Option<PathBuf>,
}

impl<'a> Autotuner<'a> {
    /// Creates a tuner for `runner` over the given accuracy bins.
    pub fn new(runner: &'a dyn TrialRunner, bins: AccuracyBins, options: TunerOptions) -> Self {
        Autotuner {
            runner,
            bins,
            options,
            trial_cache: None,
        }
    }

    /// Persists the trial memo across runs: before tuning, memo
    /// entries are preloaded from the JSON sidecar at `path` (keyed by
    /// `(transform name, config fingerprint, n, seed)`); after tuning,
    /// the merged memo is written back, best-effort. Re-tuning the
    /// same transform — after a seed change, a wider bin set, a small
    /// schema-default change — then starts warm, with reuse reported
    /// as [`TunerStats::cache_hits_warm`].
    ///
    /// Only takes effect when memoization does (deterministic runner,
    /// `TunerOptions::memoize_trials`); a wall-clock run neither reads
    /// nor writes the sidecar.
    pub fn with_trial_cache(mut self, path: impl Into<PathBuf>) -> Self {
        self.trial_cache = Some(path.into());
        self
    }

    /// Runs the full tuning loop and returns the tuned program.
    ///
    /// # Errors
    ///
    /// See [`TunerError`].
    pub fn tune(self) -> Result<TunedProgram, TunerError> {
        self.tune_outcome().map(|o| o.program)
    }

    /// Runs the full tuning loop, returning the program plus run
    /// statistics (used by the ablation benches).
    ///
    /// # Errors
    ///
    /// See [`TunerError`].
    pub fn tune_outcome(self) -> Result<TuningOutcome, TunerError> {
        let counting = CountingRunner::new(self.runner);
        let schema = counting.schema().clone();
        if schema.is_empty() {
            return Err(TunerError::NothingToTune);
        }
        let mode = if self.options.parallel_trials {
            EvalMode::Parallel
        } else {
            EvalMode::Sequential
        };
        // Memoization requires trials to be pure functions of
        // (config, n, seed); a wall-clock runner says it is not, and
        // serving it cached timings would feed the comparator
        // zero-variance samples.
        let memo = MemoPolicy::for_runner(self.options.memoize_trials, counting.deterministic());
        let evaluator =
            Evaluator::with_memo_policy(&counting, mode, memo).with_faults(FaultPolicy {
                max_retries: self.options.max_trial_retries,
                deadline: self.options.trial_deadline,
                ..FaultPolicy::default()
            });
        if let Some(path) = &self.trial_cache {
            evaluator.load_sidecar(path);
        }
        let pool = MutatorPool::from_schema(&schema);
        let comparator = Comparator::new(self.options.comparator);
        let mut rng = SmallRng::seed_from_u64(self.options.seed);
        let mut stats = TunerStats::default();
        let pool_at_start = Pool::global().batch_stats();
        let run_tracing = pb_trace::enabled();
        let (run_seq, run_start) = if run_tracing {
            (pb_trace::next_seq(), pb_trace::now_ns())
        } else {
            (0, 0)
        };
        let mut next_id: u64 = 0;
        let mut alloc_id = || {
            let id = next_id;
            next_id += 1;
            id
        };

        // Initial population: schema default plus a few random mutants.
        let mut pop = Population::new();
        pop.add(Candidate::new(alloc_id(), schema.default_config()));
        for _ in 0..self.options.initial_random {
            let mut config = schema.default_config();
            if pool
                .apply_random(
                    &mut config,
                    &schema,
                    self.options.initial_size,
                    &mut rng,
                    None,
                )
                .is_some()
            {
                pop.add(Candidate::new(alloc_id(), config));
            }
        }

        let sizes = self.options.size_schedule();
        for (gen_idx, &n) in sizes.iter().enumerate() {
            let gen_span = PhaseSpan::begin(EventKind::Generation, gen_idx as u64);
            let span = PhaseSpan::begin(EventKind::PhaseTest, n);
            pop.test_all(&evaluator, n, self.options.min_trials);
            PhaseSpan::end(span);
            for _round in 0..self.options.rounds_per_size {
                self.random_mutation(
                    &evaluator,
                    &schema,
                    &pool,
                    &comparator,
                    &mut pop,
                    n,
                    &mut rng,
                    &mut stats,
                    &mut alloc_id,
                );
                if self.targets_not_reached(&pop, n) {
                    stats.guided_runs += 1;
                    let span = PhaseSpan::begin(EventKind::PhaseGuided, n);
                    self.guided_mutation(
                        &evaluator,
                        &schema,
                        &mut pop,
                        n,
                        &mut stats,
                        &mut alloc_id,
                    );
                    PhaseSpan::end(span);
                }
                let span = PhaseSpan::begin(EventKind::PhasePrune, n);
                let report = pop.prune(
                    n,
                    &self.bins,
                    self.options.keep_per_bin,
                    &evaluator,
                    &comparator,
                );
                PhaseSpan::end(span);
                stats.pruned += report.removed;
                stats.prune_rounds += report.arena.rounds;
                stats.prune_draws += report.arena.draws;
                stats.prune_max_batch = stats.prune_max_batch.max(report.arena.max_round);
                stats.pair_memo_queries += report.arena.memo_queries;
                stats.pair_memo_hits += report.arena.memo_hits;
            }
            if let Some(g) = gen_span {
                // A generation's headline arg is its input size.
                let delta = Pool::global().batch_stats().delta_since(&g.pool_before);
                pb_trace::record(Event::span(
                    EventKind::Generation,
                    g.seq,
                    g.idx,
                    g.start_ns,
                    [n, delta.dispatched, delta.inline, delta.tasks],
                ));
            }
        }

        // Assemble the tuned program at the final size.
        let final_n = *sizes.last().expect("schedule is never empty");
        let mut entries = Vec::with_capacity(self.bins.len());
        for &target in self.bins.targets() {
            let idx = match pop.fastest_meeting(final_n, target) {
                Some(i) => i,
                None => {
                    // Last-resort guided mutation aimed at this target.
                    self.guided_mutation(
                        &evaluator,
                        &schema,
                        &mut pop,
                        final_n,
                        &mut stats,
                        &mut alloc_id,
                    );
                    pop.fastest_meeting(final_n, target).ok_or_else(|| {
                        let best = pop
                            .best_accuracy_index(final_n)
                            .map(|i| pop.candidates()[i].mean_accuracy(final_n))
                            .unwrap_or(f64::NEG_INFINITY);
                        TunerError::AccuracyUnreachable {
                            target,
                            best_achieved: best,
                        }
                    })?
                }
            };
            let candidate = &pop.candidates()[idx];
            entries.push(TunedEntry {
                target,
                config: candidate.config.clone(),
                observed_accuracy: candidate.mean_accuracy(final_n),
                observed_time: candidate.mean_time(final_n),
            });
        }
        stats.trials = counting.count();
        stats.cache_hits = evaluator.cache_hits();
        stats.cache_hits_warm = evaluator.cache_hits_warm();
        stats.cache_misses = evaluator.cache_misses();
        stats.cache_coalesced = evaluator.cache_coalesced();
        stats.trial_panics = evaluator.trial_panics();
        stats.trial_timeouts = evaluator.trial_timeouts();
        stats.trial_nonfinite = evaluator.trial_nonfinite();
        stats.trial_retries = evaluator.trial_retries();
        stats.quarantined = evaluator.quarantined();
        if let Some(path) = &self.trial_cache {
            // Best-effort: a read-only training directory should not
            // fail the tuning run that produced a valid program.
            let _ = evaluator.save_sidecar(path);
        }
        let pool_delta = Pool::global().batch_stats().delta_since(&pool_at_start);
        if run_tracing {
            pb_trace::record(Event::span(
                EventKind::TuningRun,
                run_seq,
                0,
                run_start,
                [self.options.seed, sizes.len() as u64, stats.trials, 0],
            ));
        }
        Ok(TuningOutcome {
            program: TunedProgram::new(schema.name(), self.bins, entries),
            stats,
            final_population: pop.len(),
            pool: RunPoolStats {
                total: pool_delta,
                trial: evaluator.pool_trial_stats(),
            },
        })
    }

    /// Whether any accuracy bin is unmet by every candidate (drives the
    /// guided-mutation phase of Figure 5).
    fn targets_not_reached(&self, pop: &Population, n: u64) -> bool {
        self.bins
            .targets()
            .iter()
            .any(|&t| pop.fastest_meeting(n, t).is_none())
    }

    /// The random-mutation phase (§5.5.2) in plan-then-execute form:
    ///
    /// 1. **Plan** — draw every mutation attempt of the round against
    ///    the round-start population: pick a random parent and
    ///    mutator, build the child configuration. No trials run.
    /// 2. **Execute** — batch all planned children's initial trials
    ///    through the evaluator (the work-stealing pool in parallel
    ///    mode).
    /// 3. **Merge** — decide each child-vs-parent comparison through
    ///    one comparison-arena session, in *waves* of plan-order pairs
    ///    with pairwise-distinct parents. Pairs within a wave are
    ///    fully disjoint (every child is new, parents are distinct),
    ///    so each wave's comparator draws execute as one
    ///    [`Evaluator::run_batch`] on the pool; pairs sharing a parent
    ///    stay strictly ordered across waves, so every comparison sees
    ///    exactly the statistics the old one-blocking-comparison-at-a-
    ///    time merge produced — identical draws, identical accept/
    ///    reject decisions, just batched. A child is kept if it beats
    ///    its parent in either time or accuracy.
    ///
    /// All randomness is consumed in the plan phase and all decisions
    /// happen in the fixed merge order, so parallel execution is
    /// bit-identical to sequential.
    #[allow(clippy::too_many_arguments)]
    fn random_mutation(
        &self,
        evaluator: &Evaluator<'_>,
        schema: &Schema,
        pool: &MutatorPool,
        comparator: &Comparator,
        pop: &mut Population,
        n: u64,
        rng: &mut SmallRng,
        stats: &mut TunerStats,
        alloc_id: &mut impl FnMut() -> u64,
    ) {
        if pop.is_empty() {
            return;
        }
        // Phase 1 — plan. Parents are drawn from the round-start
        // population (accepted children join the parent pool next
        // round).
        let span = PhaseSpan::begin(EventKind::PhaseMutate, n);
        let parent_count = pop.len();
        let mut planned: Vec<(usize, Candidate)> = Vec::new();
        for _ in 0..self.options.mutation_attempts {
            let parent_idx = rng.gen_range(0..parent_count);
            let parent = &pop.candidates()[parent_idx];
            let mut config = parent.config.clone();
            let prev = parent.last_mutation.clone();
            let Some(record) = pool.apply_random(&mut config, schema, n, rng, prev.as_ref()) else {
                continue;
            };
            let mut child = Candidate::new(alloc_id(), config);
            child.last_mutation = Some(record);
            planned.push((parent_idx, child));
        }

        // Phase 2 — execute the whole round's initial trials at once.
        let mut requests = Vec::new();
        let mut spans = Vec::new();
        for (_, child) in &planned {
            let plan = child.plan_trials(n, self.options.min_trials);
            spans.push(plan.len());
            requests.extend(plan);
        }
        let outcomes = evaluator.run_batch(&requests);
        let mut offset = 0;
        for ((_, child), count) in planned.iter_mut().zip(&spans) {
            for outcome in &outcomes[offset..offset + *count] {
                child.absorb(n, outcome);
            }
            offset += count;
        }
        PhaseSpan::end(span);

        // Phase 3 — merge through the arena. All children join the
        // population at fixed indices after the parents; rejected ones
        // are dropped once every pair is decided.
        let parent_of: Vec<usize> = planned.iter().map(|&(p, _)| p).collect();
        for (_, child) in planned {
            stats.children_created += 1;
            pop.add(child);
        }
        let span = PhaseSpan::begin(EventKind::PhaseMerge, n);
        let (accepted, report) = pop.merge_children(
            &parent_of,
            n,
            evaluator,
            comparator,
            self.options.comparator.alpha,
        );
        PhaseSpan::end(span);
        stats.children_accepted += accepted.iter().filter(|&&a| a).count() as u64;
        pop.retain_indexed(|idx| idx < parent_count || accepted[idx - parent_count]);
        stats.merge_rounds += report.rounds;
        stats.merge_draws += report.draws;
        stats.merge_max_batch = stats.merge_max_batch.max(report.max_round);
        stats.pair_memo_queries += report.memo_queries;
        stats.pair_memo_hits += report.memo_hits;
    }

    /// The guided-mutation phase (§5.5.3): hill climbing on the
    /// accuracy tunables of the best-accuracy candidate toward the
    /// lowest unmet bin target.
    ///
    /// Each hill-climbing step's neighbour probes are independent, so
    /// their trials execute as one batch; the winning probe is picked
    /// in the fixed (tunable, neighbour) iteration order, keeping
    /// parallel execution bit-identical to sequential.
    fn guided_mutation(
        &self,
        evaluator: &Evaluator<'_>,
        schema: &Schema,
        pop: &mut Population,
        n: u64,
        stats: &mut TunerStats,
        alloc_id: &mut impl FnMut() -> u64,
    ) {
        let Some(&target) = self
            .bins
            .targets()
            .iter()
            .find(|&&t| pop.fastest_meeting(n, t).is_none())
        else {
            return;
        };
        let Some(base_idx) = pop.best_accuracy_index(n) else {
            return;
        };
        let accuracy_ids = schema.accuracy_tunables();
        if accuracy_ids.is_empty() {
            return;
        }

        let mut current = pop.candidates()[base_idx].config.clone();
        let mut current_acc = evaluator.mean_accuracy(&current, n, self.options.min_trials);
        let mut improved_any = false;

        for _ in 0..self.options.guided_max_steps {
            if current_acc >= target {
                break;
            }
            // Plan the step's probes …
            let mut probes: Vec<Config> = Vec::new();
            for &id in &accuracy_ids {
                for neighbor in neighbor_values(schema, &current, id) {
                    let mut probe = current.clone();
                    probe.set(id, neighbor);
                    if probe == current {
                        continue;
                    }
                    probes.push(probe);
                }
            }
            // … execute their trials as one batch …
            let mut requests = Vec::new();
            for probe in &probes {
                requests.extend(crate::exec::TrialRequest::batch_for(
                    probe,
                    n,
                    (0..self.options.min_trials).map(|i| crate::candidate::trial_seed(n, i)),
                ));
            }
            let outcomes = evaluator.run_batch(&requests);
            // … and pick the winner in plan order.
            let trials = self.options.min_trials as usize;
            let mut best: Option<(Config, f64)> = None;
            for (k, probe) in probes.into_iter().enumerate() {
                let span = &outcomes[k * trials..(k + 1) * trials];
                let mut acc_stats = pb_stats::OnlineStats::new();
                for outcome in span {
                    acc_stats.push(outcome.accuracy);
                }
                let acc = acc_stats.mean();
                if best.as_ref().map(|(_, a)| acc > *a).unwrap_or(true) {
                    best = Some((probe, acc));
                }
            }
            match best {
                Some((config, acc)) if acc > current_acc => {
                    current = config;
                    current_acc = acc;
                    improved_any = true;
                }
                _ => break, // local optimum
            }
        }

        if improved_any || current_acc >= target {
            let mut candidate = Candidate::new(alloc_id(), current);
            candidate.ensure_tested(evaluator, n, self.options.min_trials);
            stats.children_created += 1;
            stats.children_accepted += 1;
            pop.add(candidate);
        }
    }
}

/// Hill-climbing neighbourhood for one accuracy tunable: double, halve,
/// increment, decrement for accuracy variables; every alternative
/// algorithm for choice sites.
fn neighbor_values(schema: &Schema, config: &Config, id: pb_config::TunableId) -> Vec<Value> {
    let tunable = schema.tunable_by_id(id);
    match tunable.kind() {
        TunableKind::AccuracyVariable { .. } => {
            let v = config.get(id).as_int().unwrap_or(1);
            [v * 2, v / 2, v + 1, v - 1]
                .into_iter()
                .map(|x| tunable.clamp(Value::Int(x)))
                .collect()
        }
        TunableKind::ChoiceSite { num_algorithms } => (0..*num_algorithms)
            .map(|i| Value::Tree(pb_config::DecisionTree::single(i)))
            .collect(),
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_runtime::{CostModel, ExecCtx, Transform, TransformRunner};

    /// Diminishing-returns iteration benchmark: accuracy = 1 - 1/(1+i),
    /// cost = i·n. The optimal config for target a is the smallest i
    /// with 1 - 1/(1+i) >= a.
    struct Iterate;

    impl Transform for Iterate {
        type Input = ();
        type Output = f64;
        fn name(&self) -> &str {
            "iterate"
        }
        fn schema(&self) -> Schema {
            let mut s = Schema::new("iterate");
            s.add_accuracy_variable("iters", 1, 1 << 14);
            s
        }
        fn generate_input(&self, _n: u64, _rng: &mut SmallRng) {}
        fn execute(&self, _i: &(), ctx: &mut ExecCtx<'_>) -> f64 {
            let iters = ctx.param("iters").unwrap() as f64;
            ctx.charge(iters * ctx.size() as f64);
            1.0 - 1.0 / (1.0 + iters)
        }
        fn accuracy(&self, _i: &(), o: &f64) -> f64 {
            *o
        }
    }

    /// Two algorithms: algorithm 0 is fast but capped at accuracy 0.5;
    /// algorithm 1 is 10x slower but reaches 1.0. Tests that the tuner
    /// switches algorithms across bins.
    struct TwoAlgos;

    impl Transform for TwoAlgos {
        type Input = ();
        type Output = f64;
        fn name(&self) -> &str {
            "two_algos"
        }
        fn schema(&self) -> Schema {
            let mut s = Schema::new("two_algos");
            s.add_choice_site("algo", 2);
            s.add_accuracy_variable("effort", 1, 1024);
            s
        }
        fn generate_input(&self, _n: u64, _rng: &mut SmallRng) {}
        fn execute(&self, _i: &(), ctx: &mut ExecCtx<'_>) -> f64 {
            let effort = ctx.param("effort").unwrap() as f64;
            match ctx.choice("algo").unwrap() {
                0 => {
                    ctx.charge(effort);
                    0.5 * (1.0 - 1.0 / (1.0 + effort))
                }
                _ => {
                    ctx.charge(10.0 * effort);
                    1.0 - 1.0 / (1.0 + effort)
                }
            }
        }
        fn accuracy(&self, _i: &(), o: &f64) -> f64 {
            *o
        }
    }

    #[test]
    fn tunes_iteration_counts_per_bin() {
        let runner = TransformRunner::new(Iterate, CostModel::Virtual);
        let bins = AccuracyBins::new(vec![0.5, 0.9, 0.999]);
        let tuned = Autotuner::new(&runner, bins, TunerOptions::fast_preset(16, 3))
            .tune()
            .unwrap();
        let schema = runner.schema();
        let i0 = tuned.entry(0).config.int(schema, "iters").unwrap();
        let i1 = tuned.entry(1).config.int(schema, "iters").unwrap();
        let i2 = tuned.entry(2).config.int(schema, "iters").unwrap();
        assert!(
            i0 <= i1 && i1 <= i2,
            "iters should grow with accuracy: {i0} {i1} {i2}"
        );
        // Minimum feasible iters: 1 for 0.5, 9 for 0.9, 999 for 0.999.
        assert!(i0 >= 1 && i1 >= 9 && i2 >= 999);
        // And the tuner should not grossly overshoot (cost pressure).
        assert!(i0 <= 64, "bin 0 picked wastefully large iters {i0}");
        assert!(tuned.entry(0).observed_time <= tuned.entry(2).observed_time);
    }

    #[test]
    fn switches_algorithms_between_bins() {
        let runner = TransformRunner::new(TwoAlgos, CostModel::Virtual);
        let bins = AccuracyBins::new(vec![0.3, 0.9]);
        let tuned = Autotuner::new(&runner, bins, TunerOptions::fast_preset(16, 11))
            .tune()
            .unwrap();
        let schema = runner.schema();
        // The 0.9 bin is only reachable with algorithm 1.
        let hi = tuned.entry(1).config.choice(schema, "algo", 16).unwrap();
        assert_eq!(hi, 1);
        assert!(tuned.entry(1).observed_accuracy >= 0.9);
        assert!(tuned.entry(0).observed_accuracy >= 0.3);
    }

    #[test]
    fn unreachable_target_errors() {
        let runner = TransformRunner::new(Iterate, CostModel::Virtual);
        // Accuracy is strictly below 1.0 for any finite iters; 2.0 is
        // impossible.
        let bins = AccuracyBins::new(vec![2.0]);
        let err = Autotuner::new(&runner, bins, TunerOptions::fast_preset(8, 5))
            .tune()
            .unwrap_err();
        match err {
            TunerError::AccuracyUnreachable {
                target,
                best_achieved,
            } => {
                assert_eq!(target, 2.0);
                assert!(best_achieved < 1.01);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn empty_schema_errors() {
        struct Untunable;
        impl Transform for Untunable {
            type Input = ();
            type Output = ();
            fn name(&self) -> &str {
                "untunable"
            }
            fn schema(&self) -> Schema {
                Schema::new("untunable")
            }
            fn generate_input(&self, _n: u64, _rng: &mut SmallRng) {}
            fn execute(&self, _i: &(), _ctx: &mut ExecCtx<'_>) {}
            fn accuracy(&self, _i: &(), _o: &()) -> f64 {
                1.0
            }
        }
        let runner = TransformRunner::new(Untunable, CostModel::Virtual);
        let err = Autotuner::new(
            &runner,
            AccuracyBins::new(vec![0.5]),
            TunerOptions::fast_preset(8, 0),
        )
        .tune()
        .unwrap_err();
        assert_eq!(err, TunerError::NothingToTune);
    }

    #[test]
    fn outcome_reports_nonzero_stats() {
        let runner = TransformRunner::new(Iterate, CostModel::Virtual);
        let bins = AccuracyBins::new(vec![0.5]);
        let outcome = Autotuner::new(&runner, bins, TunerOptions::fast_preset(8, 2))
            .tune_outcome()
            .unwrap();
        assert!(outcome.stats.trials > 0);
        assert!(outcome.stats.children_created > 0);
        assert!(outcome.final_population >= 1);
    }

    #[test]
    fn wall_clock_runners_are_never_memoized() {
        let runner = TransformRunner::new(Iterate, CostModel::WallClock);
        let bins = AccuracyBins::new(vec![0.5]);
        let mut options = TunerOptions::fast_preset(8, 2);
        options.memoize_trials = true; // requested, but the runner is nondeterministic
        let outcome = Autotuner::new(&runner, bins, options)
            .tune_outcome()
            .unwrap();
        assert!(outcome.stats.trials > 0);
        assert_eq!(
            (outcome.stats.cache_hits, outcome.stats.cache_misses),
            (0, 0),
            "wall-clock timings must never be served from the memo cache"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let runner = TransformRunner::new(Iterate, CostModel::Virtual);
        let bins = AccuracyBins::new(vec![0.5, 0.9]);
        let a = Autotuner::new(&runner, bins.clone(), TunerOptions::fast_preset(8, 77))
            .tune()
            .unwrap();
        let b = Autotuner::new(&runner, bins, TunerOptions::fast_preset(8, 77))
            .tune()
            .unwrap();
        assert_eq!(a, b);
    }

    /// Algorithm 0 costs `8·n` (low constant, no setup); algorithm 1
    /// costs `n²/16 + 1` — so 0 wins above n = 128 and 1 wins below.
    /// Accuracy is 1.0 either way. Tests that decision-tree mutation
    /// lets the tuner specialize the choice by input size.
    struct SizeDependent;

    impl Transform for SizeDependent {
        type Input = ();
        type Output = ();
        fn name(&self) -> &str {
            "size_dependent"
        }
        fn schema(&self) -> Schema {
            let mut s = Schema::new("size_dependent");
            s.add_choice_site("algo", 2);
            s
        }
        fn generate_input(&self, _n: u64, _rng: &mut SmallRng) {}
        fn execute(&self, _i: &(), ctx: &mut ExecCtx<'_>) {
            let n = ctx.size() as f64;
            match ctx.choice("algo").unwrap() {
                0 => ctx.charge(8.0 * n),
                _ => ctx.charge(n * n / 16.0 + 1.0),
            }
        }
        fn accuracy(&self, _i: &(), _o: &()) -> f64 {
            1.0
        }
    }

    #[test]
    fn decision_trees_specialize_choice_by_input_size() {
        let runner = TransformRunner::new(SizeDependent, CostModel::Virtual);
        let bins = AccuracyBins::new(vec![1.0]);
        let mut options = TunerOptions::fast_preset(1024, 21);
        options.rounds_per_size = 5;
        options.mutation_attempts = 20;
        let tuned = Autotuner::new(&runner, bins, options).tune().unwrap();
        let schema = runner.schema();
        let config = &tuned.entry(0).config;
        // At the trained (largest) size, the linear algorithm must win:
        // 8·1024 = 8192 vs 1024²/16 = 65537.
        assert_eq!(config.choice(schema, "algo", 1024).unwrap(), 0);
        // The winning candidate's cost at the final size reflects the
        // correct asymptotic branch.
        assert!(tuned.entry(0).observed_time < 16_000.0);
    }

    #[test]
    fn size_schedule_is_exponential_and_ends_at_max() {
        let options = TunerOptions {
            initial_size: 1,
            max_size: 100,
            ..TunerOptions::default()
        };
        assert_eq!(options.size_schedule(), vec![1, 2, 4, 8, 16, 32, 64, 100]);
        let single = TunerOptions {
            initial_size: 64,
            max_size: 64,
            ..TunerOptions::default()
        };
        assert_eq!(single.size_schedule(), vec![64]);
    }
}
