//! Accuracy-aware genetic autotuner (§5 of the paper).
//!
//! The tuner maintains a population of candidate algorithms which it
//! "continually expands using a set of mutators … and prunes in order to
//! allow the population to evolve more optimal algorithms. The input
//! sizes used for testing during this process grow exponentially"
//! (§5.1). Unlike the original PetaBricks tuner, which optimized only
//! execution time, this tuner optimizes the two-dimensional
//! accuracy/time space and stores a discretized optimal frontier — one
//! winning configuration per accuracy bin (§4.2, §5.5.4).
//!
//! Components:
//!
//! * [`mutators`] — the mutator pool generated automatically from a
//!   transform's tunable schema (§5.4): decision-tree manipulation,
//!   log-normal scaling, uniform random, and meta mutators.
//! * [`candidate`] — a configuration plus its cached per-input-size
//!   timing/accuracy statistics.
//! * [`population`] — the accuracy-binned pruning procedure (§5.5.4).
//! * [`arena`] — the comparison arena: a session object with a
//!   pair-verdict memo and a generic "pending decisions → batched
//!   draws → merged outcomes" round loop that every comparator
//!   consumer drives, so the adaptive comparator's trial draws batch
//!   onto the work-stealing pool.
//! * [`tournament`] — the pruning procedure's fastest-K selections
//!   laid out as arena contests (k-way selection over pre-sorted
//!   runs).
//! * [`tuner`] — the top-level loop (Figure 5): test, random mutation,
//!   guided mutation, prune, over exponentially growing input sizes.
//!
//! # Examples
//!
//! ```
//! use pb_config::{AccuracyBins, Schema};
//! use pb_runtime::{CostModel, ExecCtx, Transform, TransformRunner};
//! use pb_tuner::{Autotuner, TunerOptions};
//! use rand::rngs::SmallRng;
//!
//! /// Cost = iters, accuracy = 1 - 1/(1+iters): classic diminishing
//! /// returns; the tuner should pick small iteration counts for loose
//! /// bins and large ones for tight bins.
//! struct Iterate;
//!
//! impl Transform for Iterate {
//!     type Input = ();
//!     type Output = f64;
//!     fn name(&self) -> &str { "iterate" }
//!     fn schema(&self) -> Schema {
//!         let mut s = Schema::new("iterate");
//!         s.add_accuracy_variable("iters", 1, 4096);
//!         s
//!     }
//!     fn generate_input(&self, _n: u64, _rng: &mut SmallRng) {}
//!     fn execute(&self, _input: &(), ctx: &mut pb_runtime::ExecCtx<'_>) -> f64 {
//!         let iters = ctx.param("iters").unwrap() as f64;
//!         ctx.charge(iters);
//!         1.0 - 1.0 / (1.0 + iters)
//!     }
//!     fn accuracy(&self, _input: &(), output: &f64) -> f64 { *output }
//! }
//!
//! let runner = TransformRunner::new(Iterate, CostModel::Virtual);
//! let bins = AccuracyBins::new(vec![0.5, 0.99]);
//! let tuned = Autotuner::new(&runner, bins, TunerOptions::fast_preset(8, 1))
//!     .tune()
//!     .unwrap();
//! let loose = tuned.entry(0).config.int(runner.schema(), "iters").unwrap();
//! let tight = tuned.entry(1).config.int(runner.schema(), "iters").unwrap();
//! assert!(tight > loose);
//! # let _ = ExecCtx::new(runner.schema(), &tuned.entry(0).config, 1, 0);
//! ```

pub mod arena;
pub mod candidate;
pub mod exec;
pub mod mutators;
pub mod population;
pub mod tournament;
pub mod tuner;

pub use arena::{Arena, ArenaReport, Contest, PairContest};
pub use candidate::{Candidate, SizeStats};
pub use exec::{config_fingerprint, EvalMode, Evaluator, TrialRequest};
pub use mutators::{MutationRecord, Mutator, MutatorPool};
pub use population::Population;
pub use tournament::PruneReport;
pub use tuner::{Autotuner, TunerError, TunerOptions, TunerStats, TuningOutcome};
