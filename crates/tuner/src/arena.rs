//! The comparison arena: every tuner decision as a resumable,
//! pool-batched tournament.
//!
//! The §5.5.1 comparator decides `Less`/`Greater`/`Same` from two
//! candidates' accumulated statistics and otherwise names the side
//! that needs another trial ([`pb_stats::CompareStep`]). Historically
//! only pruning consumed those steps in batched rounds; population
//! sorting, the post-promotion re-sort, and the child-vs-parent merges
//! of random mutation each ran one blocking `run_trial` at a time.
//! This module owns the machinery they now all share:
//!
//! * **A session object** ([`Arena`]) wrapping an [`Evaluator`] and a
//!   [`Comparator`] together with a session-scoped **pair-verdict
//!   memo** ([`pb_stats::PairMemo`], keyed by the unordered candidate-
//!   id pair): a pair decided during the KEEP sort of a pruning call
//!   is never re-tested — or even re-decided — during the
//!   post-promotion re-sort.
//! * **A generic round loop** ([`Arena::run`]): advance every pending
//!   decision ([`Contest`]) as far as current statistics allow,
//!   collect all stalled comparisons' requested draws, execute them as
//!   one [`Evaluator::run_batch`] on the work-stealing pool, merge
//!   outcomes back in candidate-index order, repeat. Any caller — the
//!   fastest-K selections of pruning, the pair verdicts of
//!   child-vs-parent merging — drives the same loop.
//!
//! No randomness is consumed anywhere in a round (trial seeds are a
//! deterministic function of each candidate's trial count) and merges
//! happen in plan order, so parallel execution is **bit-identical** to
//! forced-sequential execution, including every counter in
//! [`ArenaReport`].

use crate::candidate::Candidate;
use crate::exec::Evaluator;
use pb_stats::{Comparator, CompareOutcome, CompareStep, PairMemo, SampleStats, Which};
use std::collections::BTreeMap;

/// Counters for one arena session (folded into
/// [`TunerStats`](crate::TunerStats) by callers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaReport {
    /// Plan-then-execute rounds that issued a trial batch.
    pub rounds: u64,
    /// Comparator-requested trial draws executed via those batches.
    pub draws: u64,
    /// Widest single round (draws in one batch).
    pub max_round: u64,
    /// Pair-verdict memo lookups.
    pub memo_queries: u64,
    /// Lookups answered from a recorded verdict (no re-decide, no
    /// re-test).
    pub memo_hits: u64,
}

impl ArenaReport {
    /// Accumulates another session's counters into this one.
    pub fn absorb(&mut self, other: &ArenaReport) {
        self.rounds += other.rounds;
        self.draws += other.draws;
        self.max_round = self.max_round.max(other.max_round);
        self.memo_queries += other.memo_queries;
        self.memo_hits += other.memo_hits;
    }
}

/// A resumable decision driven by the arena: `advance` resolves as
/// much as `cmp` can decide from current statistics and returns `true`
/// once the decision is complete.
///
/// `cmp(a, b)` compares candidates by slice index: `Some(outcome)`
/// when decidable (or memoized), `None` when the comparison stalled —
/// in which case its trial demand has been recorded for the round's
/// batch. Implementations must keep querying every independent stalled
/// comparison before giving up the round (that is what makes rounds
/// wide) and must be idempotent across calls.
///
/// `cands` is a read-only view of the candidates at the moment of the
/// call, so a contest whose decision rule consults statistics beyond
/// the time verdict (the merge chain's Welch accuracy test, say) can
/// evaluate it at exactly the point its verdict lands — the same
/// statistics the blocking sequential procedure would have seen.
pub trait Contest {
    /// Advances as far as the comparator can decide; `true` = done.
    fn advance(
        &mut self,
        cmp: &mut dyn FnMut(usize, usize) -> Option<CompareOutcome>,
        cands: &[Candidate],
    ) -> bool;
}

/// The simplest contest: one head-to-head verdict between candidates
/// `a` and `b` (by slice index), as used by the child-vs-parent merge
/// of random mutation.
#[derive(Debug, Clone, Copy)]
pub struct PairContest {
    /// First candidate (the paper's "child" in merge usage).
    pub a: usize,
    /// Second candidate.
    pub b: usize,
    /// The decided outcome of comparing `a` to `b`, once complete.
    pub verdict: Option<CompareOutcome>,
}

impl PairContest {
    /// A pending comparison of `a` versus `b`.
    pub fn new(a: usize, b: usize) -> Self {
        PairContest {
            a,
            b,
            verdict: None,
        }
    }
}

impl Contest for PairContest {
    fn advance(
        &mut self,
        cmp: &mut dyn FnMut(usize, usize) -> Option<CompareOutcome>,
        _cands: &[Candidate],
    ) -> bool {
        if self.verdict.is_none() {
            self.verdict = cmp(self.a, self.b);
        }
        self.verdict.is_some()
    }
}

/// One comparison session: evaluator + comparator + the session's
/// pair-verdict memo and counters. Create one per tuner decision
/// procedure (a prune call, a merge phase) and [`run`](Arena::run) any
/// number of contests through it; verdicts memoize across those runs
/// for the session's lifetime.
pub struct Arena<'a, 'r> {
    evaluator: &'a Evaluator<'r>,
    comparator: &'a Comparator,
    memo: PairMemo,
    rounds: u64,
    draws: u64,
    max_round: u64,
}

impl<'a, 'r> Arena<'a, 'r> {
    /// Opens a session.
    pub fn new(evaluator: &'a Evaluator<'r>, comparator: &'a Comparator) -> Self {
        Arena {
            evaluator,
            comparator,
            memo: PairMemo::new(),
            rounds: 0,
            draws: 0,
            max_round: 0,
        }
    }

    /// The session's counters so far.
    pub fn report(&self) -> ArenaReport {
        ArenaReport {
            rounds: self.rounds,
            draws: self.draws,
            max_round: self.max_round,
            memo_queries: self.memo.queries(),
            memo_hits: self.memo.hits(),
        }
    }

    /// Runs every contest to completion.
    ///
    /// Each iteration advances all contests against the candidates'
    /// current statistics (verdicts served from the session memo where
    /// recorded); every stalled comparison deposits its draw request —
    /// per candidate, the *largest* request wins, since draws extend
    /// the shared per-candidate statistics — and the round's requests
    /// execute as one batch through the evaluator, merging back in
    /// candidate-index order.
    pub fn run<C: Contest>(&mut self, cands: &mut [Candidate], n: u64, contests: &mut [C]) {
        let empty = SampleStats::new();
        loop {
            let mut demands: BTreeMap<usize, u64> = BTreeMap::new();
            let mut all_done = true;
            {
                let cands_ro: &[Candidate] = cands;
                let comparator = self.comparator;
                let memo = &mut self.memo;
                let mut cmp = |a: usize, b: usize| -> Option<CompareOutcome> {
                    debug_assert_ne!(a, b, "cannot compare a candidate to itself");
                    let time_a = cands_ro[a].stats(n).map(|s| &s.time).unwrap_or(&empty);
                    let time_b = cands_ro[b].stats(n).map(|s| &s.time).unwrap_or(&empty);
                    let step = comparator.decide_pair_samples(
                        memo,
                        cands_ro[a].id,
                        time_a,
                        cands_ro[b].id,
                        time_b,
                    );
                    match step {
                        CompareStep::Decided(outcome) => Some(outcome),
                        CompareStep::NeedMore { which, draws } => {
                            let target = match which {
                                Which::A => a,
                                Which::B => b,
                            };
                            let entry = demands.entry(target).or_insert(0);
                            *entry = (*entry).max(draws);
                            None
                        }
                    }
                };
                for contest in contests.iter_mut() {
                    all_done &= contest.advance(&mut cmp, cands_ro);
                }
            }
            if all_done {
                return;
            }
            debug_assert!(!demands.is_empty(), "a stalled contest must demand draws");

            // Plan one batch for the whole round, spanning every
            // stalled comparison; candidate-index order fixes the
            // merge order.
            let mut requests = Vec::new();
            let mut spans: Vec<(usize, usize)> = Vec::new();
            for (&ci, &extra) in &demands {
                let plan = cands[ci].plan_more_trials(n, extra);
                spans.push((ci, plan.len()));
                requests.extend(plan);
            }
            self.rounds += 1;
            self.draws += requests.len() as u64;
            self.max_round = self.max_round.max(requests.len() as u64);

            let tracing = pb_trace::enabled();
            let (round_seq, round_start) = if tracing {
                (pb_trace::next_seq(), pb_trace::now_ns())
            } else {
                (0, 0)
            };

            // Execute on the pool (or sequentially — bit-identical
            // either way) and merge back in plan order.
            let outcomes = self.evaluator.run_batch(&requests);
            if tracing {
                pb_trace::record(pb_trace::Event::span(
                    pb_trace::EventKind::ArenaRound,
                    round_seq,
                    self.rounds - 1,
                    round_start,
                    [
                        requests.len() as u64,
                        demands.len() as u64,
                        contests.len() as u64,
                        0,
                    ],
                ));
            }
            let mut offset = 0;
            for (ci, count) in spans {
                for outcome in &outcomes[offset..offset + count] {
                    cands[ci].absorb(n, outcome);
                }
                offset += count;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::EvalMode;
    use pb_config::{Schema, Value};
    use pb_runtime::{CostModel, ExecCtx, Transform, TransformRunner};
    use rand::rngs::SmallRng;

    /// Cost = `level`, accuracy = `level / 100`.
    struct Leveled;

    impl Transform for Leveled {
        type Input = ();
        type Output = f64;
        fn name(&self) -> &str {
            "leveled"
        }
        fn schema(&self) -> Schema {
            let mut s = Schema::new("leveled");
            s.add_accuracy_variable("level", 1, 100);
            s
        }
        fn generate_input(&self, _n: u64, _rng: &mut SmallRng) {}
        fn execute(&self, _i: &(), ctx: &mut ExecCtx<'_>) -> f64 {
            let level = ctx.param("level").unwrap() as f64;
            ctx.charge(level);
            level / 100.0
        }
        fn accuracy(&self, _i: &(), o: &f64) -> f64 {
            *o
        }
    }

    fn candidates(runner: &TransformRunner<Leveled>, levels: &[i64]) -> Vec<Candidate> {
        let schema = runner.schema();
        levels
            .iter()
            .enumerate()
            .map(|(i, &level)| {
                let mut config = schema.default_config();
                config
                    .set_by_name(schema, "level", Value::Int(level))
                    .unwrap();
                Candidate::new(i as u64, config)
            })
            .collect()
    }

    #[test]
    fn pair_contests_batch_their_draws() {
        let runner = TransformRunner::new(Leveled, CostModel::Virtual);
        let mut cands = candidates(&runner, &[10, 80, 20, 60]);
        let evaluator = Evaluator::new(&runner, EvalMode::Sequential, true);
        let comparator = Comparator::default();
        let mut arena = Arena::new(&evaluator, &comparator);
        // Two disjoint pairs: their min-trial fills must share rounds.
        let mut contests = [PairContest::new(0, 1), PairContest::new(2, 3)];
        arena.run(&mut cands, 8, &mut contests);
        assert_eq!(contests[0].verdict, Some(CompareOutcome::Less));
        assert_eq!(contests[1].verdict, Some(CompareOutcome::Less));
        let report = arena.report();
        assert!(report.rounds > 0);
        assert!(
            report.max_round > 1,
            "disjoint pairs must batch together: {report:?}"
        );
    }

    #[test]
    fn session_memo_answers_repeat_contests_without_draws() {
        let runner = TransformRunner::new(Leveled, CostModel::Virtual);
        let mut cands = candidates(&runner, &[10, 80]);
        let evaluator = Evaluator::new(&runner, EvalMode::Sequential, true);
        let comparator = Comparator::default();
        let mut arena = Arena::new(&evaluator, &comparator);
        let mut first = [PairContest::new(0, 1)];
        arena.run(&mut cands, 8, &mut first);
        let draws_after_first = arena.report().draws;
        assert!(draws_after_first > 0, "fresh pair must draw trials");
        // Re-running the (reversed) pair in the same session consumes
        // no draws and reports a memo hit.
        let mut again = [PairContest::new(1, 0)];
        arena.run(&mut cands, 8, &mut again);
        assert_eq!(again[0].verdict, Some(CompareOutcome::Greater));
        let report = arena.report();
        assert_eq!(report.draws, draws_after_first, "memoized pair re-tested");
        assert!(report.memo_hits > 0);
    }
}
