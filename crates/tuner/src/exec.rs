//! Plan-then-execute trial evaluation: batching, parallelism, and
//! memoization.
//!
//! "The dominant time requirement of our autotuner is testing candidate
//! algorithms by running them on training inputs" (§5.5.1). The tuner
//! therefore separates *planning* which trials a generation needs from
//! *executing* them: phases collect [`TrialRequest`]s and hand them to
//! an [`Evaluator`], which
//!
//! * executes whole batches on the work-stealing
//!   [`pb_runtime::pool::Pool`] (or sequentially, when forced), and
//! * memoizes outcomes in a fingerprint cache keyed on
//!   `(canonical config hash, n, seed)`, so duplicate candidates and
//!   mutate-then-revert configurations never re-execute a trial.
//!
//! Because trial seeds are a deterministic function of the input size
//! and trial index, and trials are pure under the virtual cost model,
//! parallel execution is **bit-identical** to sequential execution:
//! only the wall-clock schedule differs, never an outcome or a merge
//! order.
//!
//! The evaluator also implements [`TrialRunner`], so the adaptive
//! comparator's demand-driven extra trials (§5.5.1) flow through the
//! same cache — they execute immediately on the calling thread, the
//! single-trial fallback path.

use pb_config::{Config, Value};
use pb_runtime::parallel::parallel_gen;
use pb_runtime::pool::{Pool, PoolBatchStats};
use pb_runtime::{TraceNode, TrialOutcome, TrialRunner};
use pb_stats::OnlineStats;
use pb_trace::{Event, EventKind};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How an [`Evaluator`] executes a batch of trials.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalMode {
    /// Batches run on the global work-stealing pool.
    #[default]
    Parallel,
    /// Batches run one trial at a time on the calling thread (forced
    /// sequential mode; the determinism baseline).
    Sequential,
}

/// Structured classification of one failed trial execution attempt.
///
/// Trials are hostile territory: a candidate configuration can drive a
/// transform into a panic, an unbounded slowdown, or a NaN cost. The
/// evaluator turns each of those into a `TrialError` — counted,
/// retried, and ultimately quarantined — instead of letting it
/// propagate and kill the tuning run (or poison the work-stealing
/// pool).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrialError {
    /// The trial panicked (caught via `catch_unwind`; the pool never
    /// sees the unwind).
    Panic,
    /// The trial completed but exceeded the soft deadline
    /// ([`FaultPolicy::deadline`]).
    Timeout,
    /// The trial reported a non-finite cost (NaN or ±inf `time`).
    NonFinite,
}

/// The evaluator's fault-handling policy: how many times a faulting
/// trial is retried (with deterministic backoff) before its outcome is
/// replaced by the quarantine sentinel
/// ([`TrialOutcome::QUARANTINED`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPolicy {
    /// Retries after the first failed attempt (`2` means up to three
    /// attempts total).
    pub max_retries: u32,
    /// Soft deadline per attempt: an attempt whose wall time exceeds
    /// this counts as [`TrialError::Timeout`] even though it ran to
    /// completion. `None` (the default) disables the check — and its
    /// per-trial clock reads. Note that timeout classification depends
    /// on real time, so enabling it trades bit-reproducibility of the
    /// fault *counters* for protection against hangs; panic and
    /// non-finite classification are deterministic.
    pub deadline: Option<Duration>,
    /// Base of the deterministic linear backoff between attempts
    /// (attempt `k` sleeps `k × backoff`). Deterministic in *schedule*
    /// — how long is slept never influences any decision.
    pub backoff: Duration,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            max_retries: 2,
            deadline: None,
            backoff: Duration::from_micros(100),
        }
    }
}

/// What the evaluator's memo cache is allowed to do with a recorded
/// outcome — the explicit form of the "wall-clock runners are never
/// memoized" rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoPolicy {
    /// Serve recorded outcomes verbatim. Sound only when trials are
    /// pure functions of `(config, n, seed)` — the virtual cost
    /// model.
    Replay,
    /// Never serve a recorded outcome: every request re-executes, so
    /// noisy (wall-clock) measurements are re-sampled rather than
    /// replayed. Replaying them would feed the comparator
    /// zero-variance copies of one measurement and turn one unlucky
    /// outlier into a permanent verdict.
    Resample,
}

impl MemoPolicy {
    /// The sound policy for a runner: [`MemoPolicy::Replay`] only when
    /// memoization was requested *and* the runner's trials are
    /// deterministic.
    pub fn for_runner(requested: bool, deterministic: bool) -> MemoPolicy {
        if requested && deterministic {
            MemoPolicy::Replay
        } else {
            MemoPolicy::Resample
        }
    }
}

/// One planned trial: a configuration to run at input size `n` with a
/// deterministic seed.
///
/// The configuration is shared (`Arc`) and its fingerprint is
/// computed once per plan, so a candidate's `min_trials` requests —
/// and `run_batch`'s internal bookkeeping — never re-clone or re-hash
/// the config.
#[derive(Debug, Clone)]
pub struct TrialRequest {
    config: Arc<Config>,
    fingerprint: u64,
    /// Input size.
    pub n: u64,
    /// Deterministic trial seed (derived from `n` and the trial
    /// index, shared across candidates).
    pub seed: u64,
}

impl TrialRequest {
    /// Plans one trial, fingerprinting the configuration.
    pub fn new(config: Arc<Config>, n: u64, seed: u64) -> Self {
        let fingerprint = config_fingerprint(&config);
        TrialRequest {
            config,
            fingerprint,
            n,
            seed,
        }
    }

    /// Plans a run of trials over `seeds` for one configuration,
    /// fingerprinting it once.
    pub fn batch_for(config: &Config, n: u64, seeds: impl Iterator<Item = u64>) -> Vec<Self> {
        let config = Arc::new(config.clone());
        let fingerprint = config_fingerprint(&config);
        seeds
            .map(|seed| TrialRequest {
                config: Arc::clone(&config),
                fingerprint,
                n,
                seed,
            })
            .collect()
    }

    /// The configuration to execute.
    pub fn config(&self) -> &Config {
        &self.config
    }
}

/// 64-bit FNV-1a over a configuration's canonical structure.
///
/// Canonical because [`Config`] stores its values in schema order; two
/// configurations reachable by different mutation paths but equal
/// value-for-value hash identically (the mutate-then-revert case).
/// Hashes the values directly — no serialization — because this runs
/// for every trial request and comparator draw.
pub fn config_fingerprint(config: &Config) -> u64 {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
    // FNV-1a, one byte at a time, so every bit of `word` stirs.
    fn mix(hash: &mut u64, word: u64) {
        for shift in (0..64).step_by(8) {
            *hash ^= (word >> shift) & 0xFF;
            *hash = hash.wrapping_mul(FNV_PRIME);
        }
    }
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in config.transform().as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    for value in config.values() {
        match value {
            Value::Int(v) => {
                mix(&mut hash, 1);
                mix(&mut hash, *v as u64);
            }
            Value::Float(v) => {
                mix(&mut hash, 2);
                // `-0.0 == 0.0`: equal configs must fingerprint
                // identically, so normalize the sign of zero before
                // taking bits.
                let v = if *v == 0.0 { 0.0 } else { *v };
                mix(&mut hash, v.to_bits());
            }
            Value::Switch(v) => {
                mix(&mut hash, 3);
                mix(&mut hash, *v as u64);
            }
            Value::Tree(tree) => {
                mix(&mut hash, 4);
                mix(&mut hash, tree.top_choice() as u64);
                for level in tree.levels() {
                    mix(&mut hash, level.cutoff);
                    mix(&mut hash, level.choice as u64);
                }
            }
        }
    }
    hash
}

type CacheKey = (u64, u64, u64);

/// One memoized outcome, tagged with whether it was preloaded from a
/// cross-run sidecar (a *warm* entry) or produced in this run.
#[derive(Debug, Clone, Copy)]
struct CachedTrial {
    outcome: TrialOutcome,
    warm: bool,
}

/// The trial memo: `(config fingerprint, n, seed) → outcome`.
#[derive(Debug, Default)]
struct TrialCache {
    map: Mutex<HashMap<CacheKey, CachedTrial>>,
    hits: AtomicU64,
    /// Hits served by entries preloaded from a sidecar (cross-run
    /// reuse), counted separately from in-run hits.
    hits_warm: AtomicU64,
    misses: AtomicU64,
    /// Intra-batch duplicates: requests that shared another request's
    /// execution *within the same batch*. Not hits — nothing was in
    /// the cache when the batch was planned — and not misses — they
    /// did not execute a trial.
    coalesced: AtomicU64,
}

impl TrialCache {
    /// Counts one lookup hit against the right counter.
    fn count_hit(&self, cached: &CachedTrial) {
        if cached.warm {
            self.hits_warm.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// On-disk form of the trial memo: one sidecar per transform, keyed by
/// `(transform name, config fingerprint, n, seed)` and stamped with
/// the schema's fingerprint — a sidecar recorded against a different
/// tunable schema is rejected wholesale, since its config fingerprints
/// describe configurations of a different shape. The hashed `u64` keys
/// are stored as hex strings — they routinely exceed `i64::MAX`, which
/// JSON integers cannot carry losslessly.
#[derive(Debug, Serialize, Deserialize)]
struct SidecarFile {
    transform: String,
    schema: String,
    /// The pool thread budget the outcomes were measured under.
    /// Schedule-aware virtual cost models divide parallel work by
    /// `available_threads()`, so outcomes from a different budget are
    /// not comparable and the whole sidecar is rejected on mismatch.
    threads: usize,
    entries: Vec<SidecarEntry>,
}

/// FNV-1a over the schema's canonical serialized form: changes to the
/// tunable set, ranges, or defaults invalidate persisted sidecars.
/// (Changes to the transform's *implementation* cannot be detected
/// from here — delete the sidecar when the measured code changes.)
fn schema_fingerprint(schema: &pb_config::Schema) -> u64 {
    let canonical = serde_json::to_string(schema).expect("schemas serialize");
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in canonical.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// One `(key, outcome)` pair of the sidecar.
#[derive(Debug, Serialize, Deserialize)]
struct SidecarEntry {
    fingerprint: String,
    n: u64,
    seed: String,
    time: f64,
    wall_seconds: f64,
    virtual_cost: f64,
    accuracy: f64,
}

/// Executes trials for the tuner: batched, optionally parallel,
/// optionally memoized.
///
/// Implements [`TrialRunner`] so existing demand-driven call sites
/// (the adaptive comparator, `ensure_tested`) transparently share the
/// cache.
pub struct Evaluator<'a> {
    runner: &'a dyn TrialRunner,
    mode: EvalMode,
    cache: Option<TrialCache>,
    /// Fault isolation policy applied around every trial execution.
    faults: FaultPolicy,
    /// Attempts that panicked (caught, never propagated).
    trial_panics: AtomicU64,
    /// Attempts that exceeded the soft deadline.
    trial_timeouts: AtomicU64,
    /// Attempts that reported a non-finite cost.
    trial_nonfinite: AtomicU64,
    /// Re-executions triggered by a faulting attempt.
    trial_retries: AtomicU64,
    /// Trials whose every attempt faulted: their outcome is the
    /// [`TrialOutcome::QUARANTINED`] sentinel.
    quarantined: AtomicU64,
    /// Pool batch traffic attributable to trial execution: the global
    /// pool's stats delta across every `execute`/single-trial window.
    /// Only the coordinator thread executes trials' windows, so the
    /// mutex is uncontended; in sequential mode the window also
    /// captures kernel batches the trials spawned at top level (the
    /// honest semantic: everything the pool did while trials ran).
    pool_trial: Mutex<PoolBatchStats>,
}

impl<'a> Evaluator<'a> {
    /// Wraps `runner`. `memoize` enables the trial cache — sound
    /// whenever trials are deterministic functions of
    /// `(config, n, seed)`, i.e. under the virtual cost model; disable
    /// it when tuning on wall-clock time, where repeated measurements
    /// genuinely differ. (The explicit form is
    /// [`Evaluator::with_memo_policy`].)
    pub fn new(runner: &'a dyn TrialRunner, mode: EvalMode, memoize: bool) -> Self {
        Self::with_memo_policy(
            runner,
            mode,
            if memoize {
                MemoPolicy::Replay
            } else {
                MemoPolicy::Resample
            },
        )
    }

    /// Wraps `runner` with an explicit cache policy; see
    /// [`MemoPolicy`] (and [`MemoPolicy::for_runner`] for the gate the
    /// tuner applies).
    pub fn with_memo_policy(runner: &'a dyn TrialRunner, mode: EvalMode, memo: MemoPolicy) -> Self {
        Evaluator {
            runner,
            mode,
            cache: (memo == MemoPolicy::Replay).then(TrialCache::default),
            faults: FaultPolicy::default(),
            trial_panics: AtomicU64::new(0),
            trial_timeouts: AtomicU64::new(0),
            trial_nonfinite: AtomicU64::new(0),
            trial_retries: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            pool_trial: Mutex::new(PoolBatchStats::default()),
        }
    }

    /// Replaces the fault isolation policy (builder-style).
    pub fn with_faults(mut self, faults: FaultPolicy) -> Self {
        self.faults = faults;
        self
    }

    /// The active execution mode.
    pub fn mode(&self) -> EvalMode {
        self.mode
    }

    /// The active memoization policy.
    pub fn memo_policy(&self) -> MemoPolicy {
        if self.cache.is_some() {
            MemoPolicy::Replay
        } else {
            MemoPolicy::Resample
        }
    }

    /// The active fault isolation policy.
    pub fn fault_policy(&self) -> FaultPolicy {
        self.faults
    }

    /// Trial attempts that panicked (caught and classified, never
    /// propagated to the pool or the tuning loop).
    pub fn trial_panics(&self) -> u64 {
        self.trial_panics.load(Ordering::Relaxed)
    }

    /// Trial attempts that exceeded [`FaultPolicy::deadline`].
    pub fn trial_timeouts(&self) -> u64 {
        self.trial_timeouts.load(Ordering::Relaxed)
    }

    /// Trial attempts that reported a non-finite cost.
    pub fn trial_nonfinite(&self) -> u64 {
        self.trial_nonfinite.load(Ordering::Relaxed)
    }

    /// Re-executions triggered by faulting attempts.
    pub fn trial_retries(&self) -> u64 {
        self.trial_retries.load(Ordering::Relaxed)
    }

    /// Trials that exhausted their retries and were recorded as
    /// [`TrialOutcome::QUARANTINED`].
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Accumulated pool batch traffic of this evaluator's trial
    /// execution windows (see the field docs). Subtracting it from a
    /// whole-run pool delta separates trial batches from the tuner's
    /// own kernel batches.
    pub fn pool_trial_stats(&self) -> PoolBatchStats {
        *self.pool_trial.lock().expect("pool stats poisoned")
    }

    /// Requests served from the cache without executing a trial
    /// (entries produced earlier in this run; warm sidecar entries are
    /// counted by [`Evaluator::cache_hits_warm`] instead).
    pub fn cache_hits(&self) -> u64 {
        self.cache
            .as_ref()
            .map_or(0, |c| c.hits.load(Ordering::Relaxed))
    }

    /// Requests served by entries preloaded from a cross-run sidecar
    /// (see [`Evaluator::load_sidecar`]).
    pub fn cache_hits_warm(&self) -> u64 {
        self.cache
            .as_ref()
            .map_or(0, |c| c.hits_warm.load(Ordering::Relaxed))
    }

    /// Requests that had to execute a trial.
    pub fn cache_misses(&self) -> u64 {
        self.cache
            .as_ref()
            .map_or(0, |c| c.misses.load(Ordering::Relaxed))
    }

    /// Requests that duplicated another request in the same batch and
    /// shared its execution (neither a hit nor a miss).
    pub fn cache_coalesced(&self) -> u64 {
        self.cache
            .as_ref()
            .map_or(0, |c| c.coalesced.load(Ordering::Relaxed))
    }

    /// Runs every request and returns outcomes in request order.
    ///
    /// Cache hits and duplicates *within* the batch (counted
    /// separately, as coalesced) never re-execute; the remaining
    /// unique trials run on the pool in parallel mode or in order in
    /// sequential mode. Identical results and identical final cache
    /// state either way.
    ///
    /// **Sharding contract.** Callers submit requests in candidate-
    /// index order (the arena plans demands through a `BTreeMap`), the
    /// miss batch preserves that order, and the pool routes contiguous
    /// chunk spans of it to shard-local injectors — so each shard
    /// executes a contiguous per-shard sub-batch of the round's
    /// candidate range. Outcomes merge back strictly by request index
    /// below, which is what keeps decisions bit-identical at any
    /// `PB_POOL_SHARDS` setting: sharding moves *where* a trial runs,
    /// never which outcome lands in which slot.
    pub fn run_batch(&self, requests: &[TrialRequest]) -> Vec<TrialOutcome> {
        let tracing = pb_trace::enabled();
        let (batch_seq, batch_start) = if tracing {
            (pb_trace::next_seq(), pb_trace::now_ns())
        } else {
            (0, 0)
        };
        let Some(cache) = &self.cache else {
            let outcomes = self.execute(requests);
            if tracing {
                pb_trace::record(Event::span(
                    EventKind::EvalBatch,
                    batch_seq,
                    0,
                    batch_start,
                    [requests.len() as u64, requests.len() as u64, 0, 0],
                ));
            }
            return outcomes;
        };

        let keys: Vec<CacheKey> = requests
            .iter()
            .map(|r| (r.fingerprint, r.n, r.seed))
            .collect();
        // Partition into already-cached slots and unique misses.
        let mut slots: Vec<Option<TrialOutcome>> = vec![None; requests.len()];
        // For non-cached requests: index into `miss_requests`.
        let mut pending: Vec<usize> = vec![usize::MAX; requests.len()];
        let mut miss_of_key: HashMap<CacheKey, usize> = HashMap::new();
        let mut miss_requests: Vec<TrialRequest> = Vec::new();
        let mut hits = 0;
        let mut hits_warm = 0;
        let mut coalesced = 0;
        {
            let map = cache.map.lock().expect("trial cache poisoned");
            for (i, (request, key)) in requests.iter().zip(&keys).enumerate() {
                if let Some(cached) = map.get(key) {
                    slots[i] = Some(cached.outcome);
                    if cached.warm {
                        hits_warm += 1;
                    } else {
                        hits += 1;
                    }
                } else if let Some(&mi) = miss_of_key.get(key) {
                    // Duplicate within the batch: executes once, but
                    // nothing was cached yet — count it as coalesced,
                    // not as a hit, so the reported hit rate reflects
                    // actual cache reuse.
                    pending[i] = mi;
                    coalesced += 1;
                } else {
                    let mi = miss_requests.len();
                    miss_of_key.insert(*key, mi);
                    miss_requests.push(request.clone());
                    pending[i] = mi;
                }
            }
        }
        cache.hits.fetch_add(hits, Ordering::Relaxed);
        cache.hits_warm.fetch_add(hits_warm, Ordering::Relaxed);
        cache.coalesced.fetch_add(coalesced, Ordering::Relaxed);
        cache
            .misses
            .fetch_add(miss_requests.len() as u64, Ordering::Relaxed);

        let executed = self.execute(&miss_requests);
        if tracing {
            pb_trace::record(Event::span(
                EventKind::EvalBatch,
                batch_seq,
                0,
                batch_start,
                [
                    requests.len() as u64,
                    miss_requests.len() as u64,
                    hits + hits_warm,
                    coalesced,
                ],
            ));
        }
        {
            let mut map = cache.map.lock().expect("trial cache poisoned");
            for (key, &mi) in &miss_of_key {
                map.insert(
                    *key,
                    CachedTrial {
                        outcome: executed[mi],
                        warm: false,
                    },
                );
            }
        }

        slots
            .into_iter()
            .zip(pending)
            .map(|(slot, mi)| slot.unwrap_or_else(|| executed[mi]))
            .collect()
    }

    /// Executes every request (no cache involvement), parallel or
    /// sequential per the mode, windowing the pool's batch stats —
    /// including the shard steal counters — into
    /// [`Evaluator::pool_trial_stats`]. In parallel mode the request
    /// range fans out through `run_indexed`, whose chunk→shard routing
    /// turns the (candidate-index-ordered) range into contiguous
    /// per-shard sub-batches.
    fn execute(&self, requests: &[TrialRequest]) -> Vec<TrialOutcome> {
        if requests.is_empty() {
            return Vec::new();
        }
        let before = Pool::global().batch_stats();
        let trace_seq = if pb_trace::enabled() {
            pb_trace::next_seq()
        } else {
            0
        };
        let outcomes = match self.mode {
            EvalMode::Sequential => requests
                .iter()
                .enumerate()
                .map(|(i, r)| self.run_one(trace_seq, i, r))
                .collect(),
            // `parallel_gen` (not `parallel_map`) so each trial knows
            // its request index — the deterministic `idx` of its trace
            // event. Behaviorally identical: `parallel_map` is this
            // exact call.
            EvalMode::Parallel => parallel_gen(requests.len(), 2, |i| {
                self.run_one(trace_seq, i, &requests[i])
            }),
        };
        let delta = Pool::global().batch_stats().delta_since(&before);
        self.pool_trial
            .lock()
            .expect("pool stats poisoned")
            .absorb(&delta);
        outcomes
    }

    /// Classifies a completed attempt: timed out, non-finite cost, or
    /// healthy (`None`).
    fn classify(&self, started: Option<Instant>, outcome: &TrialOutcome) -> Option<TrialError> {
        if let (Some(deadline), Some(started)) = (self.faults.deadline, started) {
            if started.elapsed() > deadline {
                return Some(TrialError::Timeout);
            }
        }
        if !outcome.time.is_finite() {
            return Some(TrialError::NonFinite);
        }
        None
    }

    /// Executes one trial attempt under full fault isolation: panics
    /// are caught (`catch_unwind` — the pool's unwind machinery never
    /// engages), soft-deadline overruns and non-finite costs are
    /// classified as [`TrialError`]s, and faulting attempts retry with
    /// deterministic linear backoff up to [`FaultPolicy::max_retries`]
    /// times. A trial whose every attempt faults is *quarantined*: its
    /// recorded outcome is the deterministic worst-cost sentinel
    /// [`TrialOutcome::QUARANTINED`], which loses every comparison and
    /// meets no accuracy target, so tournaments, arena contests, and
    /// merges degrade gracefully instead of aborting the run.
    fn guarded_run(&self, config: &Config, n: u64, seed: u64) -> TrialOutcome {
        let mut attempt: u32 = 0;
        loop {
            let started = self.faults.deadline.map(|_| Instant::now());
            let error =
                match catch_unwind(AssertUnwindSafe(|| self.runner.run_trial(config, n, seed))) {
                    Ok(outcome) => match self.classify(started, &outcome) {
                        None => return outcome,
                        Some(error) => error,
                    },
                    Err(_) => TrialError::Panic,
                };
            match error {
                TrialError::Panic => self.trial_panics.fetch_add(1, Ordering::Relaxed),
                TrialError::Timeout => self.trial_timeouts.fetch_add(1, Ordering::Relaxed),
                TrialError::NonFinite => self.trial_nonfinite.fetch_add(1, Ordering::Relaxed),
            };
            if attempt >= self.faults.max_retries {
                self.quarantined.fetch_add(1, Ordering::Relaxed);
                return TrialOutcome::QUARANTINED;
            }
            attempt += 1;
            self.trial_retries.fetch_add(1, Ordering::Relaxed);
            // Transient faults (a cold cache, a contended resource)
            // deserve breathing room; the schedule is a deterministic
            // function of the attempt number and never feeds back into
            // any decision.
            if !self.faults.backoff.is_zero() {
                std::thread::sleep(self.faults.backoff.saturating_mul(attempt));
            }
        }
    }

    /// Executes one demand-driven trial on the calling thread,
    /// windowing pool stats and tracing it like a one-request batch.
    fn run_single(&self, config: &Config, n: u64, seed: u64) -> TrialOutcome {
        let before = Pool::global().batch_stats();
        let trace_seq = if pb_trace::enabled() {
            pb_trace::next_seq()
        } else {
            0
        };
        let t0 = if trace_seq != 0 {
            pb_trace::now_ns()
        } else {
            0
        };
        let outcome = self.guarded_run(config, n, seed);
        if trace_seq != 0 {
            pb_trace::record(Event::span(
                EventKind::Trial,
                trace_seq,
                0,
                t0,
                [n, seed, outcome.virtual_cost as u64, 0],
            ));
        }
        let delta = Pool::global().batch_stats().delta_since(&before);
        self.pool_trial
            .lock()
            .expect("pool stats poisoned")
            .absorb(&delta);
        outcome
    }

    /// Runs one trial of a batch, tracing it when `trace_seq != 0`.
    fn run_one(&self, trace_seq: u64, index: usize, r: &TrialRequest) -> TrialOutcome {
        if trace_seq == 0 {
            return self.guarded_run(r.config(), r.n, r.seed);
        }
        let t0 = pb_trace::now_ns();
        let outcome = self.guarded_run(r.config(), r.n, r.seed);
        pb_trace::record(Event::span(
            EventKind::Trial,
            trace_seq,
            index as u64,
            t0,
            [r.n, r.seed, outcome.virtual_cost as u64, 0],
        ));
        outcome
    }

    /// Preloads the trial memo from a cross-run sidecar written by
    /// [`Evaluator::save_sidecar`], so a re-tuning run starts warm.
    /// Returns the number of entries loaded; 0 when the file is
    /// missing, malformed, recorded for a different transform, a
    /// different tunable schema, or a different pool thread budget
    /// (schedule-aware virtual costs embed it), or memoization is off
    /// — a cold start, never an error. Entries loaded here count their reuse
    /// as [`cache_hits_warm`](Evaluator::cache_hits_warm).
    ///
    /// Only sound when trials are deterministic functions of
    /// `(config, n, seed)` — the same condition as memoization
    /// itself; callers gate on [`TrialRunner::deterministic`]. A
    /// schema change invalidates the sidecar automatically; a change
    /// to the transform's *implementation* (or its cost model) does
    /// not alter the keys, so delete the sidecar when the measured
    /// code itself changes.
    pub fn load_sidecar(&self, path: &Path) -> usize {
        let Some(cache) = &self.cache else { return 0 };
        let Ok(text) = std::fs::read_to_string(path) else {
            return 0;
        };
        let file = match serde_json::from_str::<SidecarFile>(&text) {
            Ok(file) => file,
            Err(_) => {
                // A corrupted or truncated sidecar (a crashed writer
                // predating atomic renames, a bad disk, a manual edit)
                // must degrade to a cold start, not an aborted tuning
                // run — but silently ignoring real data loss helps
                // nobody, so say what happened (suppressible via
                // `PB_QUIET`).
                pb_runtime::diag_warn!(
                    "trial-cache sidecar {} is corrupted or truncated; starting cold",
                    path.display()
                );
                return 0;
            }
        };
        if file.transform != self.runner.name()
            || file.schema != format!("{:016x}", schema_fingerprint(self.runner.schema()))
            || file.threads != pb_runtime::parallel::available_threads()
        {
            return 0;
        }
        let mut map = cache.map.lock().expect("trial cache poisoned");
        let mut loaded = 0;
        for entry in file.entries {
            let (Ok(fingerprint), Ok(seed)) = (
                u64::from_str_radix(&entry.fingerprint, 16),
                u64::from_str_radix(&entry.seed, 16),
            ) else {
                continue;
            };
            let outcome = TrialOutcome {
                time: entry.time,
                wall_seconds: entry.wall_seconds,
                virtual_cost: entry.virtual_cost,
                accuracy: entry.accuracy,
            };
            if let std::collections::hash_map::Entry::Vacant(slot) =
                map.entry((fingerprint, entry.n, seed))
            {
                slot.insert(CachedTrial {
                    outcome,
                    warm: true,
                });
                loaded += 1;
            }
        }
        loaded
    }

    /// Writes the trial memo (warm and in-run entries alike) to
    /// `path` as a JSON sidecar keyed by
    /// `(transform name, config fingerprint, n, seed)`. A no-op when
    /// memoization is off. Entries with non-finite measurements are
    /// skipped — JSON cannot carry them losslessly.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from writing the file.
    pub fn save_sidecar(&self, path: &Path) -> std::io::Result<()> {
        let Some(cache) = &self.cache else {
            return Ok(());
        };
        let mut entries: Vec<SidecarEntry> = {
            let map = cache.map.lock().expect("trial cache poisoned");
            map.iter()
                .filter(|(_, cached)| {
                    let o = &cached.outcome;
                    o.time.is_finite()
                        && o.wall_seconds.is_finite()
                        && o.virtual_cost.is_finite()
                        && o.accuracy.is_finite()
                })
                .map(|(&(fingerprint, n, seed), cached)| SidecarEntry {
                    fingerprint: format!("{fingerprint:016x}"),
                    n,
                    seed: format!("{seed:016x}"),
                    time: cached.outcome.time,
                    wall_seconds: cached.outcome.wall_seconds,
                    virtual_cost: cached.outcome.virtual_cost,
                    accuracy: cached.outcome.accuracy,
                })
                .collect()
        };
        // HashMap iteration order is arbitrary; sort so the sidecar is
        // byte-stable across runs with identical contents.
        entries.sort_by(|a, b| (&a.fingerprint, a.n, &a.seed).cmp(&(&b.fingerprint, b.n, &b.seed)));
        let file = SidecarFile {
            transform: self.runner.name().to_string(),
            schema: format!("{:016x}", schema_fingerprint(self.runner.schema())),
            threads: pb_runtime::parallel::available_threads(),
            entries,
        };
        let json = serde_json::to_string_pretty(&file)
            .expect("sidecar serialization cannot fail for finite entries");
        // Write-then-rename so an interrupted save (or two runs
        // sharing one path) can never leave a truncated sidecar: the
        // next load sees either the old file or the complete new one.
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(".tmp.{}", std::process::id()));
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, json)?;
        std::fs::rename(&tmp, path)
    }

    /// Mean accuracy of `config` over trials `0..trials` at size `n`
    /// (a batched replacement for probe candidates).
    pub fn mean_accuracy(&self, config: &Config, n: u64, trials: u64) -> f64 {
        let requests = TrialRequest::batch_for(
            config,
            n,
            (0..trials).map(|index| crate::candidate::trial_seed(n, index)),
        );
        let mut acc = OnlineStats::new();
        for outcome in self.run_batch(&requests) {
            acc.push(outcome.accuracy);
        }
        acc.mean()
    }
}

impl TrialRunner for Evaluator<'_> {
    fn name(&self) -> &str {
        self.runner.name()
    }

    fn schema(&self) -> &pb_config::Schema {
        self.runner.schema()
    }

    fn deterministic(&self) -> bool {
        self.runner.deterministic()
    }

    /// Single-trial execution: the fallback path for demand-driven
    /// draws. Served from the cache when possible; executes on the
    /// calling thread otherwise.
    fn run_trial(&self, config: &Config, n: u64, seed: u64) -> TrialOutcome {
        let Some(cache) = &self.cache else {
            return self.run_single(config, n, seed);
        };
        let key = (config_fingerprint(config), n, seed);
        {
            let map = cache.map.lock().expect("trial cache poisoned");
            if let Some(cached) = map.get(&key) {
                cache.count_hit(cached);
                return cached.outcome;
            }
        }
        cache.misses.fetch_add(1, Ordering::Relaxed);
        let outcome = self.run_single(config, n, seed);
        cache.map.lock().expect("trial cache poisoned").insert(
            key,
            CachedTrial {
                outcome,
                warm: false,
            },
        );
        outcome
    }

    /// Traced runs are never cached (the trace is not memoized).
    fn run_traced(&self, config: &Config, n: u64, seed: u64) -> (TrialOutcome, TraceNode) {
        self.runner.run_traced(config, n, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::trial_seed;
    use pb_config::{Schema, Value};
    use pb_runtime::{CostModel, ExecCtx, Transform, TransformRunner};
    use rand::rngs::SmallRng;

    struct Linear;

    impl Transform for Linear {
        type Input = ();
        type Output = ();
        fn name(&self) -> &str {
            "linear"
        }
        fn schema(&self) -> Schema {
            let mut s = Schema::new("linear");
            s.add_accuracy_variable("v", 1, 100);
            s
        }
        fn generate_input(&self, _n: u64, _rng: &mut SmallRng) {}
        fn execute(&self, _i: &(), ctx: &mut ExecCtx<'_>) {
            let v = ctx.param("v").unwrap() as f64;
            ctx.charge(v * ctx.size() as f64);
        }
        fn accuracy(&self, _i: &(), _o: &()) -> f64 {
            0.5
        }
    }

    fn request(config: &Config, n: u64, index: u64) -> TrialRequest {
        TrialRequest::new(Arc::new(config.clone()), n, trial_seed(n, index))
    }

    #[test]
    fn duplicate_config_hits_the_cache() {
        let runner = TransformRunner::new(Linear, CostModel::Virtual);
        let eval = Evaluator::new(&runner, EvalMode::Sequential, true);
        let config = runner.schema().default_config();
        let reqs = vec![request(&config, 8, 0), request(&config, 8, 1)];
        let first = eval.run_batch(&reqs);
        assert_eq!(eval.cache_misses(), 2);
        assert_eq!(eval.cache_hits(), 0);
        // A duplicate candidate re-requests the exact same trials.
        let second = eval.run_batch(&reqs);
        assert_eq!(eval.cache_misses(), 2, "no re-execution");
        assert_eq!(eval.cache_hits(), 2);
        assert_eq!(first, second);
    }

    #[test]
    fn duplicates_within_one_batch_execute_once() {
        let runner = TransformRunner::new(Linear, CostModel::Virtual);
        let eval = Evaluator::new(&runner, EvalMode::Sequential, true);
        let config = runner.schema().default_config();
        let reqs = vec![
            request(&config, 8, 0),
            request(&config, 8, 0),
            request(&config, 8, 0),
        ];
        let out = eval.run_batch(&reqs);
        assert_eq!(eval.cache_misses(), 1);
        assert_eq!(
            eval.cache_hits(),
            0,
            "nothing was cached when the batch was planned"
        );
        assert_eq!(eval.cache_coalesced(), 2);
        assert_eq!(out[0], out[1]);
        assert_eq!(out[1], out[2]);
        // Re-running the same batch *is* cache reuse: all three hit.
        eval.run_batch(&reqs);
        assert_eq!(eval.cache_misses(), 1);
        assert_eq!(eval.cache_hits(), 3);
        assert_eq!(eval.cache_coalesced(), 2);
    }

    #[test]
    fn negative_zero_fingerprints_like_positive_zero() {
        let mut schema = Schema::new("zeroes");
        schema.add_float_param("f", -1.0, 1.0);
        let mut pos = schema.default_config();
        pos.set_by_name(&schema, "f", Value::Float(0.0)).unwrap();
        let mut neg = schema.default_config();
        neg.set_by_name(&schema, "f", Value::Float(-0.0)).unwrap();
        // The configs are equal …
        assert_eq!(pos, neg);
        // … so they must hit the same memo entry.
        assert_eq!(config_fingerprint(&pos), config_fingerprint(&neg));
        // A genuinely different float still fingerprints differently.
        let mut other = schema.default_config();
        other.set_by_name(&schema, "f", Value::Float(0.5)).unwrap();
        assert_ne!(config_fingerprint(&pos), config_fingerprint(&other));
    }

    #[test]
    fn mutation_changes_the_fingerprint() {
        let runner = TransformRunner::new(Linear, CostModel::Virtual);
        let schema = runner.schema();
        let eval = Evaluator::new(&runner, EvalMode::Sequential, true);
        let base = schema.default_config();
        eval.run_batch(&[request(&base, 8, 0)]);
        assert_eq!(eval.cache_misses(), 1);
        // A mutated config misses …
        let mut mutated = base.clone();
        mutated.set_by_name(schema, "v", Value::Int(7)).unwrap();
        assert_ne!(config_fingerprint(&base), config_fingerprint(&mutated));
        eval.run_batch(&[request(&mutated, 8, 0)]);
        assert_eq!(eval.cache_misses(), 2);
        // … but reverting the mutation hits again.
        let mut reverted = mutated.clone();
        reverted.set_by_name(schema, "v", Value::Int(1)).unwrap();
        assert_eq!(config_fingerprint(&base), config_fingerprint(&reverted));
        eval.run_batch(&[request(&reverted, 8, 0)]);
        assert_eq!(eval.cache_misses(), 2);
        assert_eq!(eval.cache_hits(), 1);
    }

    #[test]
    fn demand_driven_single_trials_share_the_cache() {
        let runner = TransformRunner::new(Linear, CostModel::Virtual);
        let eval = Evaluator::new(&runner, EvalMode::Sequential, true);
        let config = runner.schema().default_config();
        eval.run_batch(&[request(&config, 16, 0)]);
        // The comparator-style single draw for the same trial hits.
        let outcome = eval.run_trial(&config, 16, trial_seed(16, 0));
        assert_eq!(eval.cache_hits(), 1);
        assert_eq!(outcome.time, 16.0);
    }

    #[test]
    fn memoization_can_be_disabled() {
        let runner = TransformRunner::new(Linear, CostModel::Virtual);
        let eval = Evaluator::new(&runner, EvalMode::Sequential, false);
        let config = runner.schema().default_config();
        let reqs = vec![request(&config, 8, 0), request(&config, 8, 0)];
        eval.run_batch(&reqs);
        eval.run_batch(&reqs);
        assert_eq!(eval.cache_hits(), 0);
        assert_eq!(eval.cache_misses(), 0);
    }

    #[test]
    fn sidecar_round_trips_the_memo() {
        let runner = TransformRunner::new(Linear, CostModel::Virtual);
        let eval = Evaluator::new(&runner, EvalMode::Sequential, true);
        let config = runner.schema().default_config();
        let reqs = vec![request(&config, 8, 0), request(&config, 8, 1)];
        let first = eval.run_batch(&reqs);
        let path =
            std::env::temp_dir().join(format!("pb_sidecar_roundtrip_{}.json", std::process::id()));
        eval.save_sidecar(&path).unwrap();

        // A fresh evaluator preloads the sidecar and serves the same
        // requests without executing anything — counted as warm hits,
        // separate from in-run hits.
        let warm = Evaluator::new(&runner, EvalMode::Sequential, true);
        assert_eq!(warm.load_sidecar(&path), 2);
        let second = warm.run_batch(&reqs);
        assert_eq!(first, second);
        assert_eq!(warm.cache_misses(), 0);
        assert_eq!(warm.cache_hits(), 0);
        assert_eq!(warm.cache_hits_warm(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sidecar_is_keyed_by_transform_name() {
        struct Renamed;
        impl Transform for Renamed {
            type Input = ();
            type Output = ();
            fn name(&self) -> &str {
                "renamed"
            }
            fn schema(&self) -> Schema {
                let mut s = Schema::new("renamed");
                s.add_accuracy_variable("v", 1, 100);
                s
            }
            fn generate_input(&self, _n: u64, _rng: &mut SmallRng) {}
            fn execute(&self, _i: &(), ctx: &mut ExecCtx<'_>) {
                ctx.charge(1.0);
            }
            fn accuracy(&self, _i: &(), _o: &()) -> f64 {
                0.5
            }
        }
        let runner = TransformRunner::new(Linear, CostModel::Virtual);
        let eval = Evaluator::new(&runner, EvalMode::Sequential, true);
        let config = runner.schema().default_config();
        eval.run_batch(&[request(&config, 8, 0)]);
        let path =
            std::env::temp_dir().join(format!("pb_sidecar_transform_{}.json", std::process::id()));
        eval.save_sidecar(&path).unwrap();
        // Another transform's evaluator must not warm from it.
        let other_runner = TransformRunner::new(Renamed, CostModel::Virtual);
        let other = Evaluator::new(&other_runner, EvalMode::Sequential, true);
        assert_eq!(other.load_sidecar(&path), 0);
        // Same transform name but a changed tunable schema: the stale
        // measurements describe configurations of a different shape
        // and must be rejected wholesale.
        struct LinearWider;
        impl Transform for LinearWider {
            type Input = ();
            type Output = ();
            fn name(&self) -> &str {
                "linear"
            }
            fn schema(&self) -> Schema {
                let mut s = Schema::new("linear");
                s.add_accuracy_variable("v", 1, 200);
                s
            }
            fn generate_input(&self, _n: u64, _rng: &mut SmallRng) {}
            fn execute(&self, _i: &(), ctx: &mut ExecCtx<'_>) {
                ctx.charge(1.0);
            }
            fn accuracy(&self, _i: &(), _o: &()) -> f64 {
                0.5
            }
        }
        let wider_runner = TransformRunner::new(LinearWider, CostModel::Virtual);
        let wider = Evaluator::new(&wider_runner, EvalMode::Sequential, true);
        assert_eq!(wider.load_sidecar(&path), 0);
        // A different pool thread budget: schedule-aware virtual costs
        // divide by it, so the recorded outcomes are not comparable.
        let threads = pb_runtime::parallel::available_threads();
        let text = std::fs::read_to_string(&path).unwrap();
        let tampered = text.replace(
            &format!("\"threads\": {threads}"),
            &format!("\"threads\": {}", threads + 1),
        );
        assert_ne!(text, tampered, "threads field must be present");
        std::fs::write(&path, tampered).unwrap();
        let same = Evaluator::new(&runner, EvalMode::Sequential, true);
        assert_eq!(same.load_sidecar(&path), 0);
        // A missing file and a disabled cache are cold starts, not
        // errors.
        let _ = std::fs::remove_file(&path);
        assert_eq!(eval.load_sidecar(&path), 0);
        let uncached = Evaluator::new(&runner, EvalMode::Sequential, false);
        assert_eq!(uncached.load_sidecar(&path), 0);
    }

    /// Panics while fewer than `fail_first` calls have been made, then
    /// behaves like `Linear`. `&self`-mutable via an atomic so the
    /// object-safe `Transform` interface stays untouched.
    struct Flaky {
        fail_first: u64,
        calls: AtomicU64,
    }

    impl Flaky {
        fn new(fail_first: u64) -> Self {
            Flaky {
                fail_first,
                calls: AtomicU64::new(0),
            }
        }
    }

    impl Transform for Flaky {
        type Input = ();
        type Output = ();
        fn name(&self) -> &str {
            "flaky"
        }
        fn schema(&self) -> Schema {
            let mut s = Schema::new("flaky");
            s.add_accuracy_variable("v", 1, 100);
            s
        }
        fn generate_input(&self, _n: u64, _rng: &mut SmallRng) {}
        fn execute(&self, _i: &(), ctx: &mut ExecCtx<'_>) {
            if self.calls.fetch_add(1, Ordering::Relaxed) < self.fail_first {
                panic!("injected trial panic (test)");
            }
            ctx.charge(ctx.size() as f64);
        }
        fn accuracy(&self, _i: &(), _o: &()) -> f64 {
            0.5
        }
    }

    fn quiet_faults(max_retries: u32) -> FaultPolicy {
        FaultPolicy {
            max_retries,
            deadline: None,
            backoff: Duration::ZERO,
        }
    }

    #[test]
    fn transient_panic_recovers_after_retry() {
        let runner = TransformRunner::new(Flaky::new(1), CostModel::Virtual);
        let eval = Evaluator::new(&runner, EvalMode::Sequential, true).with_faults(quiet_faults(2));
        let config = runner.schema().default_config();
        let out = eval.run_batch(&[request(&config, 8, 0)]);
        assert_eq!(out[0].time, 8.0, "the retry produced a healthy outcome");
        assert_eq!(eval.trial_panics(), 1);
        assert_eq!(eval.trial_retries(), 1);
        assert_eq!(eval.quarantined(), 0);
        // The healthy (post-retry) outcome is what got memoized.
        let again = eval.run_batch(&[request(&config, 8, 0)]);
        assert_eq!(again[0], out[0]);
        assert_eq!(eval.cache_hits(), 1);
        assert_eq!(eval.trial_panics(), 1, "no re-execution, no new faults");
    }

    #[test]
    fn exhausted_retries_quarantine_with_the_sentinel() {
        let runner = TransformRunner::new(Flaky::new(u64::MAX), CostModel::Virtual);
        let eval = Evaluator::new(&runner, EvalMode::Sequential, true).with_faults(quiet_faults(2));
        let config = runner.schema().default_config();
        let out = eval.run_batch(&[request(&config, 8, 0)]);
        assert!(out[0].is_quarantined());
        assert_eq!(eval.trial_panics(), 3, "initial attempt + two retries");
        assert_eq!(eval.trial_retries(), 2);
        assert_eq!(eval.quarantined(), 1);
        // The sentinel is non-finite, so a sidecar save skips it.
        let path =
            std::env::temp_dir().join(format!("pb_sidecar_quarantine_{}.json", std::process::id()));
        eval.save_sidecar(&path).unwrap();
        let warm = Evaluator::new(&runner, EvalMode::Sequential, true);
        assert_eq!(warm.load_sidecar(&path), 0, "sentinels never persist");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn non_finite_costs_are_classified_and_quarantined() {
        struct NanCost;
        impl Transform for NanCost {
            type Input = ();
            type Output = ();
            fn name(&self) -> &str {
                "nan_cost"
            }
            fn schema(&self) -> Schema {
                let mut s = Schema::new("nan_cost");
                s.add_accuracy_variable("v", 1, 100);
                s
            }
            fn generate_input(&self, _n: u64, _rng: &mut SmallRng) {}
            fn execute(&self, _i: &(), ctx: &mut ExecCtx<'_>) {
                ctx.charge(f64::NAN);
            }
            fn accuracy(&self, _i: &(), _o: &()) -> f64 {
                0.5
            }
        }
        let runner = TransformRunner::new(NanCost, CostModel::Virtual);
        let eval = Evaluator::new(&runner, EvalMode::Sequential, true).with_faults(quiet_faults(1));
        let config = runner.schema().default_config();
        let out = eval.run_batch(&[request(&config, 8, 0)]);
        assert!(out[0].is_quarantined());
        assert_eq!(eval.trial_nonfinite(), 2);
        assert_eq!(eval.trial_panics(), 0);
        assert_eq!(eval.quarantined(), 1);
    }

    #[test]
    fn slow_trials_trip_the_soft_deadline() {
        struct Slow;
        impl Transform for Slow {
            type Input = ();
            type Output = ();
            fn name(&self) -> &str {
                "slow"
            }
            fn schema(&self) -> Schema {
                let mut s = Schema::new("slow");
                s.add_accuracy_variable("v", 1, 100);
                s
            }
            fn generate_input(&self, _n: u64, _rng: &mut SmallRng) {}
            fn execute(&self, _i: &(), ctx: &mut ExecCtx<'_>) {
                std::thread::sleep(Duration::from_millis(5));
                ctx.charge(1.0);
            }
            fn accuracy(&self, _i: &(), _o: &()) -> f64 {
                0.5
            }
        }
        let runner = TransformRunner::new(Slow, CostModel::Virtual);
        let eval = Evaluator::new(&runner, EvalMode::Sequential, true).with_faults(FaultPolicy {
            max_retries: 1,
            deadline: Some(Duration::from_micros(100)),
            backoff: Duration::ZERO,
        });
        let config = runner.schema().default_config();
        let out = eval.run_batch(&[request(&config, 8, 0)]);
        assert!(
            out[0].is_quarantined(),
            "every attempt overran the deadline"
        );
        assert_eq!(eval.trial_timeouts(), 2);
        assert_eq!(eval.quarantined(), 1);
    }

    #[test]
    fn memo_policy_gate_replays_only_deterministic_runners() {
        assert_eq!(MemoPolicy::for_runner(true, true), MemoPolicy::Replay);
        assert_eq!(MemoPolicy::for_runner(true, false), MemoPolicy::Resample);
        assert_eq!(MemoPolicy::for_runner(false, true), MemoPolicy::Resample);
        assert_eq!(MemoPolicy::for_runner(false, false), MemoPolicy::Resample);
        let runner = TransformRunner::new(Linear, CostModel::Virtual);
        let eval = Evaluator::with_memo_policy(&runner, EvalMode::Sequential, MemoPolicy::Replay);
        assert_eq!(eval.memo_policy(), MemoPolicy::Replay);
        let eval = Evaluator::with_memo_policy(&runner, EvalMode::Sequential, MemoPolicy::Resample);
        assert_eq!(eval.memo_policy(), MemoPolicy::Resample);
    }

    #[test]
    fn wall_clock_trials_resample_through_the_evaluator() {
        // The wall-clock satellite: real measurements flow through
        // `run_batch`/`run_trial` under `MemoPolicy::Resample`, every
        // request re-executes, and outcomes stay finite.
        let runner = TransformRunner::new(Linear, CostModel::WallClock);
        let memo = MemoPolicy::for_runner(true, runner.deterministic());
        assert_eq!(memo, MemoPolicy::Resample);
        let eval = Evaluator::with_memo_policy(&runner, EvalMode::Sequential, memo);
        let config = runner.schema().default_config();
        let reqs = vec![request(&config, 8, 0), request(&config, 8, 0)];
        for outcome in eval.run_batch(&reqs) {
            assert!(outcome.time.is_finite());
            assert_eq!(outcome.time, outcome.wall_seconds);
        }
        // Demand-driven draws re-execute too: no hits, no misses
        // counted (there is no cache at all).
        let _ = eval.run_trial(&config, 8, trial_seed(8, 0));
        assert_eq!(eval.cache_hits(), 0);
        assert_eq!(eval.cache_misses(), 0);
        assert_eq!(eval.quarantined(), 0);
    }

    #[test]
    fn corrupted_sidecar_starts_cold() {
        let runner = TransformRunner::new(Linear, CostModel::Virtual);
        let eval = Evaluator::new(&runner, EvalMode::Sequential, true);
        let path =
            std::env::temp_dir().join(format!("pb_sidecar_corrupt_{}.json", std::process::id()));
        // Truncated JSON — the classic torn write.
        std::fs::write(&path, "{\"transform\": \"linear\", \"entr").unwrap();
        assert_eq!(eval.load_sidecar(&path), 0);
        // The evaluator is fully usable afterwards.
        let config = runner.schema().default_config();
        let out = eval.run_batch(&[request(&config, 8, 0)]);
        assert_eq!(out[0].time, 8.0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn parallel_and_sequential_batches_agree() {
        let runner = TransformRunner::new(Linear, CostModel::Virtual);
        let config = runner.schema().default_config();
        let reqs: Vec<TrialRequest> = (0..64).map(|i| request(&config, 32, i)).collect();
        let seq = Evaluator::new(&runner, EvalMode::Sequential, true).run_batch(&reqs);
        let par = Evaluator::new(&runner, EvalMode::Parallel, true).run_batch(&reqs);
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            // `wall_seconds` is a real clock measurement and differs
            // run to run even sequentially; everything the tuner
            // consumes must agree bitwise.
            assert_eq!(s.time, p.time);
            assert_eq!(s.virtual_cost, p.virtual_cost);
            assert_eq!(s.accuracy, p.accuracy);
        }
    }
}
