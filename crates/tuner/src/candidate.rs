//! Candidate algorithms: a configuration plus cached measurements.
//!
//! "The dominant time requirement of our autotuner is testing candidate
//! algorithms by running them on training inputs" (§5.5.1), so every
//! trial's result is cached on the candidate for its lifetime in the
//! population, keyed by input size.

use crate::exec::TrialRequest;
use crate::mutators::MutationRecord;
use pb_config::Config;
use pb_runtime::{TrialOutcome, TrialRunner};
use pb_stats::{OnlineStats, SampleStats};
use std::collections::BTreeMap;

/// Cached timing and accuracy statistics for one input size.
#[derive(Debug, Clone, Default)]
pub struct SizeStats {
    /// Cost observations (per the runner's cost model). Sample-
    /// retaining, so the comparator's [`pb_stats::Robustness`] policy
    /// can winsorize or trim noisy wall-clock measurements; the
    /// pass-through mean/variance are bit-identical to the plain
    /// accumulator.
    pub time: SampleStats,
    /// Accuracy-metric observations.
    pub accuracy: OnlineStats,
}

/// One member of the tuner's population.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Unique id within one tuning run (used for seeding and reports).
    pub id: u64,
    /// The configuration this candidate embodies.
    pub config: Config,
    /// Per-input-size cached measurements.
    results: BTreeMap<u64, SizeStats>,
    /// Record of the mutation that created this candidate, consumed by
    /// the `MetaUndo` mutator (§5.4).
    pub last_mutation: Option<MutationRecord>,
}

impl Candidate {
    /// Wraps a configuration as an untested candidate.
    pub fn new(id: u64, config: Config) -> Self {
        Candidate {
            id,
            config,
            results: BTreeMap::new(),
            last_mutation: None,
        }
    }

    /// The cached statistics for input size `n`, if any trials ran.
    pub fn stats(&self, n: u64) -> Option<&SizeStats> {
        self.results.get(&n)
    }

    /// Mutable (creating) access to the statistics for size `n`.
    pub fn stats_mut(&mut self, n: u64) -> &mut SizeStats {
        self.results.entry(n).or_default()
    }

    /// Number of trials cached at size `n`.
    pub fn trials(&self, n: u64) -> u64 {
        self.stats(n).map(|s| s.time.count()).unwrap_or(0)
    }

    /// Mean cost at size `n` (`+inf` when untested, so untested
    /// candidates sort last in rough performance ordering).
    pub fn mean_time(&self, n: u64) -> f64 {
        self.stats(n)
            .filter(|s| !s.time.is_empty())
            .map(|s| s.time.mean())
            .unwrap_or(f64::INFINITY)
    }

    /// Mean accuracy at size `n` (`-inf` when untested).
    pub fn mean_accuracy(&self, n: u64) -> f64 {
        self.stats(n)
            .filter(|s| !s.accuracy.is_empty())
            .map(|s| s.accuracy.mean())
            .unwrap_or(f64::NEG_INFINITY)
    }

    /// Runs trials at size `n` until at least `min_trials` are cached.
    ///
    /// Seeds are a deterministic function of the size and trial index,
    /// so *different candidates are measured on the same training
    /// inputs*, which sharpens comparisons exactly as reusing test
    /// inputs did in the original system.
    pub fn ensure_tested(&mut self, runner: &dyn TrialRunner, n: u64, min_trials: u64) {
        while self.trials(n) < min_trials {
            self.run_one_trial(runner, n);
        }
    }

    /// Plans the trials needed to reach `min_trials` cached trials at
    /// size `n` (the *plan* half of plan-then-execute; outcomes are
    /// merged back with [`Candidate::absorb`] in trial-index order).
    /// The configuration is cloned and fingerprinted once for the
    /// whole plan.
    pub fn plan_trials(&self, n: u64, min_trials: u64) -> Vec<TrialRequest> {
        TrialRequest::batch_for(
            &self.config,
            n,
            (self.trials(n)..min_trials).map(|index| trial_seed(n, index)),
        )
    }

    /// Plans `extra` additional trials beyond the ones already cached
    /// at size `n` (the comparator-draw analogue of
    /// [`Candidate::plan_trials`]; used by tournament pruning to batch
    /// the adaptive comparator's requested draws). Outcomes must be
    /// merged back with [`Candidate::absorb`] in plan order.
    pub fn plan_more_trials(&self, n: u64, extra: u64) -> Vec<TrialRequest> {
        let start = self.trials(n);
        TrialRequest::batch_for(
            &self.config,
            n,
            (start..start + extra).map(|index| trial_seed(n, index)),
        )
    }

    /// Merges one planned trial's outcome into the size-`n` statistics.
    /// Callers must absorb outcomes in the trial-index order they were
    /// planned, which keeps parallel runs bit-identical to sequential.
    pub fn absorb(&mut self, n: u64, outcome: &TrialOutcome) {
        let stats = self.stats_mut(n);
        stats.time.push(outcome.time);
        stats.accuracy.push(outcome.accuracy);
    }

    /// Runs exactly one more trial at size `n` and returns the measured
    /// cost (the shape [`pb_stats::Comparator`] expects from a sample
    /// source).
    pub fn run_one_trial(&mut self, runner: &dyn TrialRunner, n: u64) -> f64 {
        let trial_index = self.trials(n);
        let seed = trial_seed(n, trial_index);
        let outcome = runner.run_trial(&self.config, n, seed);
        let stats = self.stats_mut(n);
        stats.time.push(outcome.time);
        stats.accuracy.push(outcome.accuracy);
        outcome.time
    }

    /// Whether this candidate meets accuracy `target` at size `n` (by
    /// mean accuracy over its cached trials).
    pub fn meets_target(&self, n: u64, target: f64) -> bool {
        self.mean_accuracy(n) >= target
    }
}

/// Deterministic seed for trial `index` at input size `n`, shared by all
/// candidates so they compete on identical inputs.
pub(crate) fn trial_seed(n: u64, index: u64) -> u64 {
    let mut x = n
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(index.wrapping_mul(0xD1B54A32D192ED03))
        .wrapping_add(0x2545F4914F6CDD1D);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51AFD7ED558CCD);
    x ^= x >> 33;
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_config::Schema;
    use pb_runtime::{CostModel, ExecCtx, Transform, TransformRunner};
    use rand::rngs::SmallRng;

    struct Fixed;

    impl Transform for Fixed {
        type Input = ();
        type Output = ();
        fn name(&self) -> &str {
            "fixed"
        }
        fn schema(&self) -> Schema {
            let mut s = Schema::new("fixed");
            s.add_accuracy_variable("v", 1, 10);
            s
        }
        fn generate_input(&self, _n: u64, _rng: &mut SmallRng) {}
        fn execute(&self, _i: &(), ctx: &mut ExecCtx<'_>) {
            let v = ctx.param("v").unwrap() as f64;
            ctx.charge(v * ctx.size() as f64);
        }
        fn accuracy(&self, _i: &(), _o: &()) -> f64 {
            0.7
        }
    }

    #[test]
    fn ensure_tested_reaches_min_and_caches() {
        let runner = TransformRunner::new(Fixed, CostModel::Virtual);
        let mut c = Candidate::new(0, runner.schema().default_config());
        assert_eq!(c.trials(16), 0);
        assert_eq!(c.mean_time(16), f64::INFINITY);
        assert_eq!(c.mean_accuracy(16), f64::NEG_INFINITY);
        c.ensure_tested(&runner, 16, 3);
        assert_eq!(c.trials(16), 3);
        assert_eq!(c.mean_time(16), 16.0);
        assert_eq!(c.mean_accuracy(16), 0.7);
        // Calling again does not add trials.
        c.ensure_tested(&runner, 16, 3);
        assert_eq!(c.trials(16), 3);
        // Other sizes remain independent.
        assert_eq!(c.trials(32), 0);
    }

    #[test]
    fn meets_target_uses_mean_accuracy() {
        let runner = TransformRunner::new(Fixed, CostModel::Virtual);
        let mut c = Candidate::new(0, runner.schema().default_config());
        c.ensure_tested(&runner, 8, 2);
        assert!(c.meets_target(8, 0.7));
        assert!(c.meets_target(8, 0.5));
        assert!(!c.meets_target(8, 0.71));
        assert!(!c.meets_target(16, 0.1), "untested size never qualifies");
    }

    #[test]
    fn trial_seeds_are_distinct_but_deterministic() {
        let a = trial_seed(64, 0);
        let b = trial_seed(64, 1);
        let c = trial_seed(128, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, trial_seed(64, 0));
    }
}
