//! Fastest-K selection (§5.5.4) as arena contests.
//!
//! Each accuracy bin's six-step selection is a resumable
//! [`Contest`](crate::arena::Contest) driven by the
//! [`Arena`](crate::arena::Arena) round loop, so many selections
//! interleave their comparator draws into shared pool batches:
//!
//! 1–2. rough sort by cached mean time, split at the K-th element into
//!      KEEP and DISCARD (no trials);
//! 3.   sort KEEP with the adaptive comparator via a **k-way selection
//!      layout**: a bracket tournament over the heads of the pending
//!      runs. Every undecided head-to-head at every computable bracket
//!      level is queried each round, which exposes strictly more
//!      independent comparisons per round than a bottom-up two-run
//!      merge (whose stalled merges each expose exactly one). The
//!      extra queries the bracket replays after a pop cost nothing:
//!      decided verdicts come back from the session's pair memo.
//! 4.   compare each DISCARD element against the **fixed** K-th KEEP
//!      element (snapshotted before any promotion — §5.5.4; a moving
//!      pivot would make promotion depend on DISCARD iteration order);
//!      the promotion comparisons are mutually independent and batch.
//! 5.   re-sort by k-way selection over **pre-sorted runs**: the
//!      sorted KEEP run plus each promoted element as a singleton.
//!      KEEP-internal pairs are never re-compared (they share a run),
//!      promoted-vs-pivot verdicts replay from the pair memo, and only
//!      the first K elements are ever selected — the tail the
//!      bottom-up merge used to sort fully is left unsorted.
//! 6.   keep the first K.

use crate::arena::Contest;
use crate::candidate::Candidate;
use pb_stats::{total_cmp_nan_last, CompareOutcome};

/// What one [`Population::prune`](crate::Population::prune) call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneReport {
    /// Candidates removed from the population.
    pub removed: u64,
    /// The prune call's arena-session counters (rounds, draws, widths,
    /// pair-memo traffic).
    pub arena: crate::arena::ArenaReport,
}

/// K-way selection over pre-sorted runs of candidate indices:
/// repeatedly pops the overall fastest remaining head via a bracket
/// tournament, until `take` elements are selected.
///
/// The bracket pairs heads in run order, so the left side of every
/// pairing comes from an earlier run; ties (`Same`) keep the left
/// element, preserving the stability of the insertion/merge sorts this
/// replaces. Brackets are recomputed from scratch on every advance:
/// decided pairings answer from the arena's session memo (free), and
/// every *undecided* pairing whose inputs are known is queried before
/// the round ends — that breadth is what widens the trial batches.
struct KWaySelect {
    runs: Vec<Vec<usize>>,
    /// Per-run cursor: `runs[r][pos[r]]` is the current head.
    pos: Vec<usize>,
    out: Vec<usize>,
    take: usize,
}

impl KWaySelect {
    /// Selection of the first `take` elements across `runs`, each run
    /// pre-sorted fastest-first.
    fn new(runs: Vec<Vec<usize>>, take: usize) -> Self {
        let pos = vec![0; runs.len()];
        KWaySelect {
            runs,
            pos,
            out: Vec::with_capacity(take),
            take,
        }
    }

    fn remaining(&self) -> usize {
        self.runs
            .iter()
            .zip(&self.pos)
            .map(|(run, &p)| run.len() - p)
            .sum()
    }

    /// Pops winners while the bracket can decide; `true` once `take`
    /// elements are out (or the runs are exhausted).
    fn advance(&mut self, cmp: &mut dyn FnMut(usize, usize) -> Option<CompareOutcome>) -> bool {
        loop {
            let want = self.take.min(self.out.len() + self.remaining());
            if self.out.len() >= want {
                return true;
            }
            // Current heads, in run order. `None` marks an unknown
            // bracket winner below.
            let mut round: Vec<Option<usize>> = self
                .runs
                .iter()
                .zip(&self.pos)
                .filter(|(run, &p)| p < run.len())
                .map(|(run, &p)| Some(run[p]))
                .collect();
            while round.len() > 1 {
                let mut next = Vec::with_capacity(round.len().div_ceil(2));
                let mut pairs = round.chunks(2);
                for pair in &mut pairs {
                    next.push(match *pair {
                        [left] => left,
                        // An unknown side makes the pairing's winner
                        // unknown, but sibling pairings still advance
                        // (and still deposit their draw demands).
                        [Some(left), Some(right)] => match cmp(right, left) {
                            None => None,
                            Some(CompareOutcome::Less) => Some(right),
                            Some(_) => Some(left),
                        },
                        _ => None,
                    });
                }
                round = next;
            }
            match round.first().copied().flatten() {
                Some(winner) => {
                    let r = self
                        .runs
                        .iter()
                        .zip(&self.pos)
                        .position(|(run, &p)| p < run.len() && run[p] == winner)
                        .expect("winner is some run's head");
                    self.pos[r] += 1;
                    self.out.push(winner);
                }
                None => return false,
            }
        }
    }

    fn into_selected(self) -> Vec<usize> {
        self.out
    }
}

enum Phase {
    /// Step 3: fully sort KEEP (every element a singleton run).
    Sort(KWaySelect),
    /// Step 4: compare each DISCARD element against the **fixed** K-th
    /// KEEP element.
    Promote {
        keep: Vec<usize>,
        discard: Vec<usize>,
        verdicts: Vec<Option<bool>>,
    },
    /// Step 5: select the first K across the sorted KEEP run and the
    /// promoted singletons.
    Resort(KWaySelect),
    /// Step 6: the first K.
    Done(Vec<usize>),
}

/// One accuracy bin's six-step fastest-K selection (§5.5.4), expressed
/// as a resumable [`Contest`] so many selections interleave their
/// comparator draws into shared arena batches.
pub(crate) struct Selection {
    k: usize,
    /// DISCARD half, stashed until the KEEP sort finishes.
    discard: Vec<usize>,
    phase: Phase,
}

impl Selection {
    /// Steps 1–2: rough sort by cached mean time (no extra trials) and
    /// split at the K-th element.
    pub(crate) fn new(cands: &[Candidate], mut indices: Vec<usize>, k: usize, n: u64) -> Self {
        if k == 0 || indices.len() <= k {
            let kept = if k == 0 { Vec::new() } else { indices };
            return Selection {
                k,
                discard: Vec::new(),
                phase: Phase::Done(kept),
            };
        }
        indices.sort_by(|&a, &b| total_cmp_nan_last(cands[a].mean_time(n), cands[b].mean_time(n)));
        let discard = indices.split_off(k);
        let runs = indices.into_iter().map(|i| vec![i]).collect();
        Selection {
            k,
            discard,
            phase: Phase::Sort(KWaySelect::new(runs, k)),
        }
    }

    pub(crate) fn into_result(self) -> Vec<usize> {
        match self.phase {
            Phase::Done(kept) => kept,
            _ => unreachable!("selection consumed before completion"),
        }
    }
}

impl Contest for Selection {
    /// Advances through the phases as far as `cmp` can decide;
    /// returns `true` once the selection is done.
    fn advance(
        &mut self,
        cmp: &mut dyn FnMut(usize, usize) -> Option<CompareOutcome>,
        _cands: &[Candidate],
    ) -> bool {
        loop {
            match &mut self.phase {
                Phase::Done(_) => return true,
                Phase::Sort(sort) => {
                    if !sort.advance(cmp) {
                        return false;
                    }
                    let sort = match std::mem::replace(&mut self.phase, Phase::Done(Vec::new())) {
                        Phase::Sort(sort) => sort,
                        _ => unreachable!(),
                    };
                    let keep = sort.into_selected();
                    let discard = std::mem::take(&mut self.discard);
                    let verdicts = vec![None; discard.len()];
                    self.phase = Phase::Promote {
                        keep,
                        discard,
                        verdicts,
                    };
                }
                Phase::Promote {
                    keep,
                    discard,
                    verdicts,
                } => {
                    let pivot = keep[self.k - 1];
                    // The promotion comparisons are mutually
                    // independent: record every stalled one's demand
                    // before giving up the round.
                    let mut stalled = false;
                    for (&d, verdict) in discard.iter().zip(verdicts.iter_mut()) {
                        if verdict.is_none() {
                            match cmp(d, pivot) {
                                Some(outcome) => *verdict = Some(outcome == CompareOutcome::Less),
                                None => stalled = true,
                            }
                        }
                    }
                    if stalled {
                        return false;
                    }
                    let promoted: Vec<usize> = discard
                        .iter()
                        .zip(verdicts.iter())
                        .filter_map(|(&d, v)| v.expect("all verdicts in").then_some(d))
                        .collect();
                    let keep = std::mem::take(keep);
                    if promoted.is_empty() {
                        self.phase = Phase::Done(keep);
                    } else {
                        // Sorted KEEP is one pre-sorted run; each
                        // promoted element is a singleton run after it.
                        let mut runs = vec![keep];
                        runs.extend(promoted.into_iter().map(|d| vec![d]));
                        self.phase = Phase::Resort(KWaySelect::new(runs, self.k));
                    }
                }
                Phase::Resort(sort) => {
                    if !sort.advance(cmp) {
                        return false;
                    }
                    let sort = match std::mem::replace(&mut self.phase, Phase::Done(Vec::new())) {
                        Phase::Resort(sort) => sort,
                        _ => unreachable!(),
                    };
                    let mut selected = sort.into_selected();
                    selected.truncate(self.k);
                    self.phase = Phase::Done(selected);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a `KWaySelect` with a total order over indices and an
    /// always-decided comparator.
    fn select(runs: Vec<Vec<usize>>, take: usize, order: impl Fn(usize) -> i64) -> Vec<usize> {
        let mut sel = KWaySelect::new(runs, take);
        let mut cmp = |a: usize, b: usize| -> Option<CompareOutcome> {
            Some(match order(a).cmp(&order(b)) {
                std::cmp::Ordering::Less => CompareOutcome::Less,
                std::cmp::Ordering::Greater => CompareOutcome::Greater,
                std::cmp::Ordering::Equal => CompareOutcome::Same,
            })
        };
        assert!(sel.advance(&mut cmp));
        sel.into_selected()
    }

    #[test]
    fn kway_merges_sorted_runs() {
        let out = select(vec![vec![0, 2, 4], vec![1, 3, 5]], 6, |i| i as i64);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn kway_takes_only_what_is_asked() {
        let out = select(vec![vec![5, 6, 7], vec![0, 1, 2]], 2, |i| i as i64);
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn kway_ties_keep_earlier_run_order() {
        // All elements equal: output preserves run order, then
        // within-run order (stability).
        let out = select(vec![vec![3, 4], vec![7], vec![9]], 4, |_| 0);
        assert_eq!(out, vec![3, 4, 7, 9]);
    }

    #[test]
    fn kway_stalls_and_resumes() {
        let mut sel = KWaySelect::new(vec![vec![0], vec![1], vec![2]], 3);
        // First pass: the (1, 0) pairing is undecided; the bracket
        // must still query nothing else decidable but not pop.
        let mut undecided_pairs: Vec<(usize, usize)> = Vec::new();
        let mut cmp = |a: usize, b: usize| -> Option<CompareOutcome> {
            undecided_pairs.push((a, b));
            None
        };
        assert!(!sel.advance(&mut cmp));
        assert!(
            undecided_pairs.contains(&(1, 0)),
            "bracket must query the stalled head pair: {undecided_pairs:?}"
        );
        // Once decidable, the selection completes.
        let mut cmp = |a: usize, b: usize| -> Option<CompareOutcome> {
            Some(match a.cmp(&b) {
                std::cmp::Ordering::Less => CompareOutcome::Less,
                std::cmp::Ordering::Greater => CompareOutcome::Greater,
                std::cmp::Ordering::Equal => CompareOutcome::Same,
            })
        };
        assert!(sel.advance(&mut cmp));
        assert_eq!(sel.into_selected(), vec![0, 1, 2]);
    }

    #[test]
    fn kway_exposes_multiple_pairings_per_round() {
        // Four runs: the first bracket level has two independent
        // pairings; both must be queried in one stalled round.
        let mut sel = KWaySelect::new(vec![vec![0], vec![1], vec![2], vec![3]], 4);
        let mut queried: Vec<(usize, usize)> = Vec::new();
        let mut cmp = |a: usize, b: usize| -> Option<CompareOutcome> {
            queried.push((a, b));
            None
        };
        assert!(!sel.advance(&mut cmp));
        assert!(queried.contains(&(1, 0)));
        assert!(queried.contains(&(3, 2)));
    }
}
