//! Tournament-batched adaptive comparisons for pruning (§5.5.4 on the
//! work-stealing pool).
//!
//! The §5.5.1 comparator decides `Less`/`Greater`/`Same` from the two
//! candidates' accumulated statistics and otherwise names the side
//! that needs another trial ([`pb_stats::CompareStep`]). Pruning used
//! to consume those requests one `run_trial` at a time on the calling
//! thread; this module restructures it as **plan-then-execute
//! tournament rounds**:
//!
//! 1. **Advance** every bin's fastest-K selection as far as the
//!    current statistics allow. Selections sort with a bottom-up
//!    merge layout, so the pending head-to-head comparisons of
//!    different merges — and of different bins — are independent.
//! 2. **Plan** one [`TrialRequest`](crate::exec::TrialRequest) batch
//!    covering every stalled comparison's requested draws (per
//!    candidate, the largest request wins: draws extend the shared
//!    statistics, so the union of relative requests is their max).
//! 3. **Execute** the batch through [`Evaluator::run_batch`] — on the
//!    pool in parallel mode, sharing the trial memo — and **merge**
//!    outcomes back per candidate in plan (candidate-index) order.
//!
//! No randomness is consumed anywhere in a round (trial seeds are a
//! deterministic function of each candidate's trial count) and merges
//! happen in plan order, so parallel pruning is bit-identical to
//! sequential pruning, the same way generation batches are.

use crate::candidate::Candidate;
use crate::exec::Evaluator;
use pb_stats::{total_cmp_nan_last, Comparator, CompareOutcome, CompareStep, OnlineStats, Which};
use std::collections::BTreeMap;

/// What one [`Population::prune`](crate::Population::prune) call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneReport {
    /// Candidates removed from the population.
    pub removed: u64,
    /// Plan-then-execute rounds that issued a trial batch.
    pub rounds: u64,
    /// Comparator-requested trial draws executed via those batches.
    pub draws: u64,
    /// Largest single batch of draws.
    pub max_batch: u64,
}

/// An in-progress merge of two sorted runs of candidate indices.
///
/// `advance` pulls from whichever head the comparator ranks faster
/// (ties keep the left run's element first, preserving stability: a
/// `Same` outcome keeps original order, exactly like the insertion
/// sort this replaces).
struct Merge {
    left: Vec<usize>,
    right: Vec<usize>,
    li: usize,
    ri: usize,
    out: Vec<usize>,
}

impl Merge {
    fn new(left: Vec<usize>, right: Vec<usize>) -> Self {
        let out = Vec::with_capacity(left.len() + right.len());
        Merge {
            left,
            right,
            li: 0,
            ri: 0,
            out,
        }
    }

    /// Advances until complete (returns `true`) or until `cmp` cannot
    /// yet decide the current head-to-head (returns `false`).
    /// Idempotent once complete.
    fn advance(&mut self, cmp: &mut dyn FnMut(usize, usize) -> Option<CompareOutcome>) -> bool {
        while self.li < self.left.len() && self.ri < self.right.len() {
            let l = self.left[self.li];
            let r = self.right[self.ri];
            match cmp(r, l) {
                None => return false,
                Some(CompareOutcome::Less) => {
                    self.out.push(r);
                    self.ri += 1;
                }
                Some(_) => {
                    self.out.push(l);
                    self.li += 1;
                }
            }
        }
        self.out.extend_from_slice(&self.left[self.li..]);
        self.li = self.left.len();
        self.out.extend_from_slice(&self.right[self.ri..]);
        self.ri = self.right.len();
        true
    }
}

/// Bottom-up merge sort whose comparisons are served lazily by the
/// adaptive comparator. All merges of one level run "simultaneously":
/// each stalled merge records its pending comparison's trial demand,
/// so a whole level's draws batch together.
struct MergeSort {
    merges: Vec<Merge>,
    /// Odd run carried (last) into the next level.
    carry: Option<Vec<usize>>,
    finished: Option<Vec<usize>>,
}

impl MergeSort {
    fn new(indices: Vec<usize>) -> Self {
        let runs: Vec<Vec<usize>> = indices.into_iter().map(|i| vec![i]).collect();
        let mut sort = MergeSort {
            merges: Vec::new(),
            carry: None,
            finished: None,
        };
        sort.start_level(runs);
        sort
    }

    fn start_level(&mut self, mut runs: Vec<Vec<usize>>) {
        if runs.len() <= 1 {
            self.finished = Some(runs.pop().unwrap_or_default());
            return;
        }
        let mut iter = runs.into_iter();
        loop {
            match (iter.next(), iter.next()) {
                (Some(left), Some(right)) => self.merges.push(Merge::new(left, right)),
                (Some(last), None) => {
                    self.carry = Some(last);
                    break;
                }
                _ => break,
            }
        }
    }

    /// Advances every active merge; when a whole level completes,
    /// starts the next one within the same call (new comparisons may
    /// already be decidable from existing statistics).
    fn advance(&mut self, cmp: &mut dyn FnMut(usize, usize) -> Option<CompareOutcome>) -> bool {
        if self.finished.is_some() {
            return true;
        }
        loop {
            let mut all_done = true;
            for merge in &mut self.merges {
                all_done &= merge.advance(cmp);
            }
            if !all_done {
                return false;
            }
            let mut runs: Vec<Vec<usize>> = self.merges.drain(..).map(|m| m.out).collect();
            if let Some(carry) = self.carry.take() {
                runs.push(carry);
            }
            self.start_level(runs);
            if self.finished.is_some() {
                return true;
            }
        }
    }

    fn take_finished(&mut self) -> Vec<usize> {
        self.finished.take().expect("merge sort not finished")
    }
}

enum Phase {
    /// Step 3: fully sort KEEP with adaptive confidence.
    Sort(MergeSort),
    /// Step 4: compare each DISCARD element against the **fixed** K-th
    /// KEEP element (`keep[k-1]`, snapshotted before any promotion —
    /// per §5.5.4; comparing against a moving `keep.last()` would make
    /// promotion depend on DISCARD iteration order and wrongly reject
    /// faster candidates).
    Promote {
        keep: Vec<usize>,
        discard: Vec<usize>,
        verdicts: Vec<Option<bool>>,
    },
    /// Step 5: re-sort KEEP after promotions.
    Resort(MergeSort),
    /// Step 6: the first K.
    Done(Vec<usize>),
}

/// One accuracy bin's six-step fastest-K selection (§5.5.4), expressed
/// as a resumable state machine so many selections can interleave
/// their comparator draws into shared batches.
pub(crate) struct Selection {
    k: usize,
    /// DISCARD half, stashed until the KEEP sort finishes.
    discard: Vec<usize>,
    phase: Phase,
}

impl Selection {
    /// Steps 1–2: rough sort by cached mean time (no extra trials) and
    /// split at the K-th element.
    pub(crate) fn new(cands: &[Candidate], mut indices: Vec<usize>, k: usize, n: u64) -> Self {
        if k == 0 || indices.len() <= k {
            let kept = if k == 0 { Vec::new() } else { indices };
            return Selection {
                k,
                discard: Vec::new(),
                phase: Phase::Done(kept),
            };
        }
        indices.sort_by(|&a, &b| total_cmp_nan_last(cands[a].mean_time(n), cands[b].mean_time(n)));
        let discard = indices.split_off(k);
        Selection {
            k,
            discard,
            phase: Phase::Sort(MergeSort::new(indices)),
        }
    }

    /// Advances through the phases as far as `cmp` can decide;
    /// returns `true` once the selection is done.
    fn advance(&mut self, cmp: &mut dyn FnMut(usize, usize) -> Option<CompareOutcome>) -> bool {
        loop {
            match &mut self.phase {
                Phase::Done(_) => return true,
                Phase::Sort(sort) => {
                    if !sort.advance(cmp) {
                        return false;
                    }
                    let keep = sort.take_finished();
                    let discard = std::mem::take(&mut self.discard);
                    let verdicts = vec![None; discard.len()];
                    self.phase = Phase::Promote {
                        keep,
                        discard,
                        verdicts,
                    };
                }
                Phase::Promote {
                    keep,
                    discard,
                    verdicts,
                } => {
                    let pivot = keep[self.k - 1];
                    // The promotion comparisons are mutually
                    // independent: record every stalled one's demand
                    // before giving up the round.
                    let mut stalled = false;
                    for (&d, verdict) in discard.iter().zip(verdicts.iter_mut()) {
                        if verdict.is_none() {
                            match cmp(d, pivot) {
                                Some(outcome) => *verdict = Some(outcome == CompareOutcome::Less),
                                None => stalled = true,
                            }
                        }
                    }
                    if stalled {
                        return false;
                    }
                    let promoted: Vec<usize> = discard
                        .iter()
                        .zip(verdicts.iter())
                        .filter_map(|(&d, v)| v.expect("all verdicts in").then_some(d))
                        .collect();
                    let keep = std::mem::take(keep);
                    if promoted.is_empty() {
                        self.phase = Phase::Done(keep);
                    } else {
                        let mut all = keep;
                        all.extend(promoted);
                        self.phase = Phase::Resort(MergeSort::new(all));
                    }
                }
                Phase::Resort(sort) => {
                    if !sort.advance(cmp) {
                        return false;
                    }
                    let mut sorted = sort.take_finished();
                    sorted.truncate(self.k);
                    self.phase = Phase::Done(sorted);
                }
            }
        }
    }

    fn into_result(self) -> Vec<usize> {
        match self.phase {
            Phase::Done(kept) => kept,
            _ => unreachable!("selection consumed before completion"),
        }
    }
}

/// Runs every selection to completion, executing the comparator's
/// requested draws as [`Evaluator`] batches between rounds. Returns
/// each selection's kept indices, in selection order.
pub(crate) fn run_selections(
    cands: &mut [Candidate],
    mut selections: Vec<Selection>,
    n: u64,
    evaluator: &Evaluator<'_>,
    comparator: &Comparator,
    report: &mut PruneReport,
) -> Vec<Vec<usize>> {
    loop {
        // Advance phase: all decisions from current statistics; every
        // stalled comparison deposits its draw request in `demands`.
        let mut demands: BTreeMap<usize, u64> = BTreeMap::new();
        let mut all_done = true;
        {
            let cands_ro: &[Candidate] = cands;
            let mut cmp = |a: usize, b: usize| -> Option<CompareOutcome> {
                decide_or_demand(comparator, cands_ro, n, a, b, &mut demands)
            };
            for selection in &mut selections {
                all_done &= selection.advance(&mut cmp);
            }
        }
        if all_done {
            return selections.into_iter().map(Selection::into_result).collect();
        }
        debug_assert!(!demands.is_empty(), "a stalled selection must demand draws");

        // Plan: one batch for the whole round, spanning all bins and
        // active pairs; candidate-index order fixes the merge order.
        let mut requests = Vec::new();
        let mut spans: Vec<(usize, usize)> = Vec::new();
        for (&ci, &extra) in &demands {
            let plan = cands[ci].plan_more_trials(n, extra);
            spans.push((ci, plan.len()));
            requests.extend(plan);
        }
        report.rounds += 1;
        report.draws += requests.len() as u64;
        report.max_batch = report.max_batch.max(requests.len() as u64);

        // Execute on the pool (or sequentially — bit-identical either
        // way) and merge back in plan order.
        let outcomes = evaluator.run_batch(&requests);
        let mut offset = 0;
        for (ci, count) in spans {
            for outcome in &outcomes[offset..offset + count] {
                cands[ci].absorb(n, outcome);
            }
            offset += count;
        }
    }
}

/// The decision core applied to two candidates' time statistics: a
/// decided outcome passes through; a draw request is recorded against
/// the candidate that needs it (max across the round's comparisons,
/// since draws extend the shared per-candidate statistics).
fn decide_or_demand(
    comparator: &Comparator,
    cands: &[Candidate],
    n: u64,
    a: usize,
    b: usize,
    demands: &mut BTreeMap<usize, u64>,
) -> Option<CompareOutcome> {
    let empty = OnlineStats::new();
    let time_a = cands[a].stats(n).map(|s| &s.time).unwrap_or(&empty);
    let time_b = cands[b].stats(n).map(|s| &s.time).unwrap_or(&empty);
    match comparator.decide(time_a, time_b) {
        CompareStep::Decided(outcome) => Some(outcome),
        CompareStep::NeedMore { which, draws } => {
            let target = match which {
                Which::A => a,
                Which::B => b,
            };
            let entry = demands.entry(target).or_insert(0);
            *entry = (*entry).max(draws);
            None
        }
    }
}
