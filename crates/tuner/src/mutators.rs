//! Mutator functions (§5.4).
//!
//! "Abstractly, a mutator function creates a new algorithm configuration
//! by changing an existing configuration … The set of mutator functions
//! is different for each program, and is generated fully automatically
//! with the static analysis information contained in the training
//! information file." Here the "training information" is the
//! [`pb_config::Schema`]; [`MutatorPool::from_schema`] builds the pool.
//!
//! Four categories are reproduced:
//!
//! * **Decision-tree manipulation** — add a level (cutoff initialized to
//!   `3N/4` of the current training size), remove a level, or change one
//!   level's algorithm.
//! * **Log-normal random scaling** — multiply a size-like value by
//!   `exp(Z)`, `Z ~ N(0, 1)`; "small changes have larger effects on
//!   small values than large values".
//! * **Uniform random** — redraw a switch or user parameter uniformly
//!   from its legal values.
//! * **Meta** — apply several random mutators at once (larger jumps), or
//!   undo the previous mutation.

use pb_config::{Config, Schema, TunableId, TunableKind, Value};
use rand::rngs::SmallRng;
use rand::Rng;

/// Record of the values a mutation overwrote, sufficient to undo it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MutationRecord {
    /// `(tunable, previous value)` pairs in application order.
    pub changes: Vec<(TunableId, Value)>,
}

impl MutationRecord {
    /// Whether the mutation changed anything.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Restores the recorded previous values into `config`.
    pub fn undo(&self, config: &mut Config) {
        for (id, old) in self.changes.iter().rev() {
            config.set(*id, old.clone());
        }
    }
}

/// One mutator: a schema-directed random edit of a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mutator {
    /// Add a decision-tree level at cutoff `3N/4` with a random choice.
    TreeAddLevel {
        /// The choice site to mutate.
        site: TunableId,
    },
    /// Remove a random decision-tree level.
    TreeRemoveLevel {
        /// The choice site to mutate.
        site: TunableId,
    },
    /// Change the algorithm at a random tree level (including the top).
    TreeChangeChoice {
        /// The choice site to mutate.
        site: TunableId,
    },
    /// Log-normally rescale a random active cutoff in the tree.
    TreeScaleCutoff {
        /// The choice site to mutate.
        site: TunableId,
    },
    /// Log-normally rescale an integer tunable (cutoff or accuracy
    /// variable).
    ScaleInt {
        /// The tunable to rescale.
        id: TunableId,
    },
    /// Redraw a switch uniformly.
    UniformSwitch {
        /// The switch to redraw.
        id: TunableId,
    },
    /// Redraw a user parameter uniformly from its range.
    UniformInt {
        /// The parameter to redraw.
        id: TunableId,
    },
    /// Redraw a float parameter uniformly from its range.
    UniformFloat {
        /// The parameter to redraw.
        id: TunableId,
    },
    /// Meta: apply several random base mutators ("allowing larger jumps
    /// to be taken in the configuration space").
    MetaMany,
    /// Meta: undo the effects of the previously applied mutator.
    MetaUndo,
}

impl Mutator {
    /// Whether this mutator can change program accuracy directly
    /// (log-normal/uniform mutators on accuracy variables and
    /// decision-tree changes; §5.4). The tuner nevertheless retests
    /// accuracy after *every* mutation, conservatively.
    pub fn affects_accuracy(&self, schema: &Schema) -> bool {
        match self {
            Mutator::TreeAddLevel { .. }
            | Mutator::TreeRemoveLevel { .. }
            | Mutator::TreeChangeChoice { .. }
            | Mutator::TreeScaleCutoff { .. }
            | Mutator::MetaMany
            | Mutator::MetaUndo => true,
            Mutator::ScaleInt { id } | Mutator::UniformInt { id } => {
                schema.tunable_by_id(*id).kind().affects_accuracy()
            }
            Mutator::UniformSwitch { .. } | Mutator::UniformFloat { .. } => false,
        }
    }
}

/// Samples a standard normal via Box–Muller.
fn standard_normal(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Log-normal factor with scale 1 (§5.4).
fn lognormal_factor(rng: &mut SmallRng) -> f64 {
    standard_normal(rng).exp()
}

/// The automatically generated mutator pool for one schema.
///
/// # Examples
///
/// ```
/// use pb_config::Schema;
/// use pb_tuner::MutatorPool;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let mut schema = Schema::new("demo");
/// schema.add_choice_site("algo", 3);
/// schema.add_accuracy_variable("iters", 1, 100);
/// let pool = MutatorPool::from_schema(&schema);
/// assert!(pool.len() >= 5);
///
/// let mut config = schema.default_config();
/// let mut rng = SmallRng::seed_from_u64(0);
/// let record = pool.apply_random(&mut config, &schema, 64, &mut rng, None);
/// assert!(config.validate(&schema).is_ok());
/// # let _ = record;
/// ```
#[derive(Debug, Clone)]
pub struct MutatorPool {
    mutators: Vec<Mutator>,
}

impl MutatorPool {
    /// Builds the pool for a schema (§5.4: "generated fully
    /// automatically with the static analysis information").
    pub fn from_schema(schema: &Schema) -> Self {
        let mut mutators = Vec::new();
        for (id, tunable) in schema.iter() {
            match tunable.kind() {
                TunableKind::ChoiceSite { num_algorithms } => {
                    if *num_algorithms > 1 {
                        mutators.push(Mutator::TreeChangeChoice { site: id });
                        mutators.push(Mutator::TreeAddLevel { site: id });
                        mutators.push(Mutator::TreeRemoveLevel { site: id });
                        mutators.push(Mutator::TreeScaleCutoff { site: id });
                    }
                }
                TunableKind::Cutoff { .. } | TunableKind::AccuracyVariable { .. } => {
                    mutators.push(Mutator::ScaleInt { id });
                }
                TunableKind::Switch { num_values } => {
                    if *num_values > 1 {
                        mutators.push(Mutator::UniformSwitch { id });
                    }
                }
                TunableKind::FloatParam { .. } => {
                    mutators.push(Mutator::UniformFloat { id });
                }
                TunableKind::UserDefined { .. } => {
                    mutators.push(Mutator::UniformInt { id });
                }
            }
        }
        if !mutators.is_empty() {
            mutators.push(Mutator::MetaMany);
            mutators.push(Mutator::MetaUndo);
        }
        MutatorPool { mutators }
    }

    /// Number of mutators in the pool.
    pub fn len(&self) -> usize {
        self.mutators.len()
    }

    /// Whether the pool is empty (schema with no tunables).
    pub fn is_empty(&self) -> bool {
        self.mutators.is_empty()
    }

    /// The mutators in the pool.
    pub fn mutators(&self) -> &[Mutator] {
        &self.mutators
    }

    /// Base (non-meta) mutators.
    fn base_mutators(&self) -> impl Iterator<Item = &Mutator> {
        self.mutators
            .iter()
            .filter(|m| !matches!(m, Mutator::MetaMany | Mutator::MetaUndo))
    }

    /// Picks a random mutator and applies it to `config`.
    ///
    /// `n` is the current training input size (used for new decision
    /// tree cutoffs). `previous` is the record of the candidate's last
    /// mutation, consumed by [`Mutator::MetaUndo`]. Returns the record
    /// of this mutation, or `None` if the chosen mutator was
    /// inapplicable (e.g. removing a level from a depth-0 tree).
    pub fn apply_random(
        &self,
        config: &mut Config,
        schema: &Schema,
        n: u64,
        rng: &mut SmallRng,
        previous: Option<&MutationRecord>,
    ) -> Option<MutationRecord> {
        if self.mutators.is_empty() {
            return None;
        }
        let mutator = self.mutators[rng.gen_range(0..self.mutators.len())];
        self.apply(mutator, config, schema, n, rng, previous)
    }

    /// Applies one specific mutator. See [`MutatorPool::apply_random`].
    pub fn apply(
        &self,
        mutator: Mutator,
        config: &mut Config,
        schema: &Schema,
        n: u64,
        rng: &mut SmallRng,
        previous: Option<&MutationRecord>,
    ) -> Option<MutationRecord> {
        let mut record = MutationRecord::default();
        let applied = self.apply_inner(mutator, config, schema, n, rng, previous, &mut record);
        if applied && !record.is_empty() {
            Some(record)
        } else {
            None
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn apply_inner(
        &self,
        mutator: Mutator,
        config: &mut Config,
        schema: &Schema,
        n: u64,
        rng: &mut SmallRng,
        previous: Option<&MutationRecord>,
        record: &mut MutationRecord,
    ) -> bool {
        match mutator {
            Mutator::TreeAddLevel { site } => {
                let num = match schema.tunable_by_id(site).kind() {
                    TunableKind::ChoiceSite { num_algorithms } => *num_algorithms,
                    _ => return false,
                };
                let old = config.get(site).clone();
                let tree = match config.get_mut(site).as_tree_mut() {
                    Some(t) => t,
                    None => return false,
                };
                // §5.4: "the cutoff point is initially set to 3N/4. This
                // leaves the behavior for smaller inputs the same, while
                // changing the behavior for the current set of inputs".
                let cutoff = (3 * n / 4).max(1);
                let below = tree.select(cutoff.saturating_sub(1));
                tree.add_level(cutoff, below);
                tree.set_top_choice(rng.gen_range(0..num));
                record.changes.push((site, old));
                true
            }
            Mutator::TreeRemoveLevel { site } => {
                let old = config.get(site).clone();
                let tree = match config.get_mut(site).as_tree_mut() {
                    Some(t) => t,
                    None => return false,
                };
                if tree.depth() == 0 {
                    return false;
                }
                let idx = rng.gen_range(0..tree.depth());
                tree.remove_level(idx);
                record.changes.push((site, old));
                true
            }
            Mutator::TreeChangeChoice { site } => {
                let num = match schema.tunable_by_id(site).kind() {
                    TunableKind::ChoiceSite { num_algorithms } => *num_algorithms,
                    _ => return false,
                };
                if num < 2 {
                    return false;
                }
                let old = config.get(site).clone();
                let tree = match config.get_mut(site).as_tree_mut() {
                    Some(t) => t,
                    None => return false,
                };
                let idx = rng.gen_range(0..=tree.depth());
                let current = if idx == tree.depth() {
                    tree.top_choice()
                } else {
                    tree.levels()[idx].choice
                };
                // Draw a different algorithm.
                let mut next = rng.gen_range(0..num - 1);
                if next >= current {
                    next += 1;
                }
                tree.set_choice(idx, next);
                record.changes.push((site, old));
                true
            }
            Mutator::TreeScaleCutoff { site } => {
                let old = config.get(site).clone();
                let tree = match config.get_mut(site).as_tree_mut() {
                    Some(t) => t,
                    None => return false,
                };
                if tree.depth() == 0 {
                    return false;
                }
                let idx = rng.gen_range(0..tree.depth());
                tree.scale_cutoff(idx, lognormal_factor(rng));
                record.changes.push((site, old));
                true
            }
            Mutator::ScaleInt { id } => {
                let old = config.get(id).clone();
                let value = match old.as_int() {
                    Some(v) => v,
                    None => return false,
                };
                let factor = lognormal_factor(rng);
                let scaled = ((value as f64) * factor).round() as i64;
                // Always move at least one step so the mutation is not a
                // no-op after rounding.
                let scaled = if scaled == value {
                    if factor >= 1.0 {
                        value + 1
                    } else {
                        value - 1
                    }
                } else {
                    scaled
                };
                let clamped = schema.tunable_by_id(id).clamp(Value::Int(scaled));
                if clamped == old {
                    return false;
                }
                config.set(id, clamped);
                record.changes.push((id, old));
                true
            }
            Mutator::UniformSwitch { id } => {
                let num = match schema.tunable_by_id(id).kind() {
                    TunableKind::Switch { num_values } => *num_values,
                    _ => return false,
                };
                if num < 2 {
                    return false;
                }
                let old = config.get(id).clone();
                let current = old.as_switch().unwrap_or(0);
                let mut next = rng.gen_range(0..num - 1);
                if next >= current {
                    next += 1;
                }
                config.set(id, Value::Switch(next));
                record.changes.push((id, old));
                true
            }
            Mutator::UniformInt { id } => {
                let (min, max) = match schema.tunable_by_id(id).kind() {
                    TunableKind::UserDefined { min, max } => (*min, *max),
                    _ => return false,
                };
                if min == max {
                    return false;
                }
                let old = config.get(id).clone();
                let next = rng.gen_range(min..=max);
                if Value::Int(next) == old {
                    return false;
                }
                config.set(id, Value::Int(next));
                record.changes.push((id, old));
                true
            }
            Mutator::UniformFloat { id } => {
                let (min, max) = match schema.tunable_by_id(id).kind() {
                    TunableKind::FloatParam { min, max } => (*min, *max),
                    _ => return false,
                };
                if min == max {
                    return false;
                }
                let old = config.get(id).clone();
                config.set(id, Value::Float(rng.gen_range(min..=max)));
                record.changes.push((id, old));
                true
            }
            Mutator::MetaMany => {
                let bases: Vec<Mutator> = self.base_mutators().copied().collect();
                if bases.is_empty() {
                    return false;
                }
                let jumps = rng.gen_range(2..=4usize);
                let mut any = false;
                for _ in 0..jumps {
                    let m = bases[rng.gen_range(0..bases.len())];
                    let mut sub = MutationRecord::default();
                    if self.apply_inner(m, config, schema, n, rng, None, &mut sub) {
                        record.changes.extend(sub.changes);
                        any = true;
                    }
                }
                any
            }
            Mutator::MetaUndo => match previous {
                Some(prev) if !prev.is_empty() => {
                    // Record current values so the undo itself can be
                    // undone, then restore.
                    for (id, _) in &prev.changes {
                        record.changes.push((*id, config.get(*id).clone()));
                    }
                    prev.undo(config);
                    true
                }
                _ => false,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn schema() -> Schema {
        let mut s = Schema::new("demo");
        s.add_choice_site("algo", 3);
        s.add_cutoff("block", 1, 1_000_000);
        s.add_switch("layout", 2);
        s.add_accuracy_variable("iters", 1, 10_000);
        s.add_float_param("omega", 0.5, 2.0);
        s.add_user_param("k", 2, 16);
        s
    }

    #[test]
    fn pool_contains_expected_categories() {
        let s = schema();
        let pool = MutatorPool::from_schema(&s);
        let has = |m: &dyn Fn(&Mutator) -> bool| pool.mutators().iter().any(m);
        assert!(has(&|m| matches!(m, Mutator::TreeAddLevel { .. })));
        assert!(has(&|m| matches!(m, Mutator::ScaleInt { .. })));
        assert!(has(&|m| matches!(m, Mutator::UniformSwitch { .. })));
        assert!(has(&|m| matches!(m, Mutator::UniformFloat { .. })));
        assert!(has(&|m| matches!(m, Mutator::UniformInt { .. })));
        assert!(has(&|m| matches!(m, Mutator::MetaMany)));
        assert!(has(&|m| matches!(m, Mutator::MetaUndo)));
    }

    #[test]
    fn empty_schema_gets_empty_pool() {
        let s = Schema::new("empty");
        let pool = MutatorPool::from_schema(&s);
        assert!(pool.is_empty());
        let mut config = s.default_config();
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(pool
            .apply_random(&mut config, &s, 8, &mut rng, None)
            .is_none());
    }

    #[test]
    fn mutations_always_leave_config_valid() {
        let s = schema();
        let pool = MutatorPool::from_schema(&s);
        let mut config = s.default_config();
        let mut rng = SmallRng::seed_from_u64(1234);
        let mut prev: Option<MutationRecord> = None;
        for step in 0..500 {
            if let Some(rec) =
                pool.apply_random(&mut config, &s, 1 << (step % 16), &mut rng, prev.as_ref())
            {
                prev = Some(rec);
            }
            config
                .validate(&s)
                .unwrap_or_else(|e| panic!("invalid config after step {step}: {e}"));
        }
    }

    #[test]
    fn add_level_uses_three_quarters_cutoff() {
        let s = schema();
        let pool = MutatorPool::from_schema(&s);
        let (site, _) = s.tunable("algo").unwrap();
        let mut config = s.default_config();
        let mut rng = SmallRng::seed_from_u64(7);
        let rec = pool
            .apply(
                Mutator::TreeAddLevel { site },
                &mut config,
                &s,
                1000,
                &mut rng,
                None,
            )
            .unwrap();
        let tree = config.get(site).as_tree().unwrap();
        assert_eq!(tree.depth(), 1);
        assert_eq!(tree.levels()[0].cutoff, 750);
        // Behaviour below the cutoff is unchanged (choice 0 = old single).
        assert_eq!(tree.select(100), 0);
        assert!(!rec.is_empty());
    }

    #[test]
    fn remove_level_requires_depth() {
        let s = schema();
        let pool = MutatorPool::from_schema(&s);
        let (site, _) = s.tunable("algo").unwrap();
        let mut config = s.default_config();
        let mut rng = SmallRng::seed_from_u64(7);
        assert!(pool
            .apply(
                Mutator::TreeRemoveLevel { site },
                &mut config,
                &s,
                8,
                &mut rng,
                None
            )
            .is_none());
    }

    #[test]
    fn change_choice_always_differs() {
        let s = schema();
        let pool = MutatorPool::from_schema(&s);
        let (site, _) = s.tunable("algo").unwrap();
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..50 {
            let mut config = s.default_config();
            let before = config.get(site).as_tree().unwrap().top_choice();
            pool.apply(
                Mutator::TreeChangeChoice { site },
                &mut config,
                &s,
                8,
                &mut rng,
                None,
            )
            .unwrap();
            let after = config.get(site).as_tree().unwrap().top_choice();
            assert_ne!(before, after);
        }
    }

    #[test]
    fn scale_int_never_leaves_range_and_never_noops() {
        let s = schema();
        let pool = MutatorPool::from_schema(&s);
        let (id, _) = s.tunable("iters").unwrap();
        let mut config = s.default_config();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..200 {
            let before = config.get(id).as_int().unwrap();
            if pool
                .apply(Mutator::ScaleInt { id }, &mut config, &s, 8, &mut rng, None)
                .is_some()
            {
                let after = config.get(id).as_int().unwrap();
                assert_ne!(before, after, "accepted mutation must change the value");
                assert!((1..=10_000).contains(&after));
            }
        }
    }

    #[test]
    fn undo_restores_previous_values() {
        let s = schema();
        let pool = MutatorPool::from_schema(&s);
        let (id, _) = s.tunable("iters").unwrap();
        let mut config = s.default_config();
        // Start mid-range so scaling in either direction stays in
        // bounds and the mutation is never clamped into a no-op,
        // whatever the RNG stream produces.
        config.set(id, Value::Int(50));
        let mut rng = SmallRng::seed_from_u64(3);
        let before = config.clone();
        let rec = pool
            .apply(Mutator::ScaleInt { id }, &mut config, &s, 8, &mut rng, None)
            .unwrap();
        assert_ne!(config, before);
        let undo_rec = pool
            .apply(Mutator::MetaUndo, &mut config, &s, 8, &mut rng, Some(&rec))
            .unwrap();
        assert_eq!(config, before);
        // Undoing the undo restores the mutated state.
        pool.apply(
            Mutator::MetaUndo,
            &mut config,
            &s,
            8,
            &mut rng,
            Some(&undo_rec),
        )
        .unwrap();
        assert_ne!(config, before);
    }

    #[test]
    fn undo_without_history_is_inapplicable() {
        let s = schema();
        let pool = MutatorPool::from_schema(&s);
        let mut config = s.default_config();
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(pool
            .apply(Mutator::MetaUndo, &mut config, &s, 8, &mut rng, None)
            .is_none());
    }

    #[test]
    fn meta_many_changes_multiple_tunables_over_time() {
        let s = schema();
        let pool = MutatorPool::from_schema(&s);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut max_changes = 0;
        for _ in 0..20 {
            let mut config = s.default_config();
            if let Some(rec) = pool.apply(Mutator::MetaMany, &mut config, &s, 64, &mut rng, None) {
                max_changes = max_changes.max(rec.changes.len());
            }
        }
        assert!(max_changes >= 2, "meta mutator should take larger jumps");
    }

    #[test]
    fn affects_accuracy_classification() {
        let s = schema();
        let (iters, _) = s.tunable("iters").unwrap();
        let (block, _) = s.tunable("block").unwrap();
        let (site, _) = s.tunable("algo").unwrap();
        assert!(Mutator::ScaleInt { id: iters }.affects_accuracy(&s));
        assert!(!Mutator::ScaleInt { id: block }.affects_accuracy(&s));
        assert!(Mutator::TreeChangeChoice { site }.affects_accuracy(&s));
        assert!(Mutator::MetaMany.affects_accuracy(&s));
    }
}
