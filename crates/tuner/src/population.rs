//! The candidate population and the accuracy-binned pruning procedure.
//!
//! Pruning (§5.5.4) keeps, for each accuracy bin required by the user,
//! the fastest `K` algorithms that meet the bin's requirement — a
//! discretized optimal frontier. Because comparisons can trigger
//! additional trials (§5.5.1), the pruning procedure avoids fully
//! sorting candidates that will be discarded:
//!
//! 1. roughly sort by mean performance without extra trials;
//! 2. split at the `K`-th element into KEEP and DISCARD;
//! 3. fully sort KEEP with the adaptive comparator;
//! 4. compare each DISCARD element to the `K`-th KEEP element (a
//!    fixed pivot, snapshotted before any promotion), moving any
//!    faster ones into KEEP;
//! 5. fully sort KEEP again;
//! 6. keep the first `K`.
//!
//! The selection runs as tournament-batched rounds (see
//! [`crate::tournament`]): all bins' pending comparator draws execute
//! as one [`Evaluator`] batch per round on the work-stealing pool.

use crate::candidate::{trial_seed, Candidate, SizeStats};
use crate::exec::Evaluator;
use crate::tournament::{run_selections, PruneReport, Selection};
use pb_config::AccuracyBins;
use pb_runtime::TrialRunner;
use pb_stats::{total_cmp_nan_first, total_cmp_nan_last, Comparator, CompareOutcome};
use std::collections::BTreeSet;

/// The tuner's population of candidate algorithms.
#[derive(Debug, Default)]
pub struct Population {
    candidates: Vec<Candidate>,
}

impl Population {
    /// Creates an empty population.
    pub fn new() -> Self {
        Population::default()
    }

    /// Adds a candidate.
    pub fn add(&mut self, candidate: Candidate) {
        self.candidates.push(candidate);
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// The candidates, in insertion order.
    pub fn candidates(&self) -> &[Candidate] {
        &self.candidates
    }

    /// Mutable access to the candidates.
    pub fn candidates_mut(&mut self) -> &mut [Candidate] {
        &mut self.candidates
    }

    /// Drops candidates past `len` (used by the tuner to reject a
    /// freshly appended child that lost its parent comparison).
    pub fn truncate(&mut self, len: usize) {
        self.candidates.truncate(len);
    }

    /// Index of the candidate with the highest mean accuracy at size
    /// `n`, or `None` if empty.
    ///
    /// Selection is a total order (`f64::total_cmp`) with NaN sorting
    /// last: a candidate whose mean accuracy is NaN can never shadow
    /// one with a real measurement.
    pub fn best_accuracy_index(&self, n: u64) -> Option<usize> {
        (0..self.candidates.len()).max_by(|&a, &b| {
            total_cmp_nan_first(
                self.candidates[a].mean_accuracy(n),
                self.candidates[b].mean_accuracy(n),
            )
        })
    }

    /// Index of the fastest candidate meeting `target` accuracy at size
    /// `n` (by cached means; no extra trials). NaN mean times sort
    /// last, so a NaN-timed candidate is never reported as fastest
    /// while a finitely-timed one qualifies.
    pub fn fastest_meeting(&self, n: u64, target: f64) -> Option<usize> {
        (0..self.candidates.len())
            .filter(|&i| self.candidates[i].meets_target(n, target))
            .min_by(|&a, &b| {
                total_cmp_nan_last(
                    self.candidates[a].mean_time(n),
                    self.candidates[b].mean_time(n),
                )
            })
    }

    /// Ensures every candidate has at least `min_trials` cached at `n`
    /// (the *testPopulation* phase of Figure 5).
    ///
    /// Plan-then-execute: the whole population's missing trials are
    /// collected into one batch, executed through `evaluator` (on the
    /// work-stealing pool in parallel mode), and merged back per
    /// candidate in trial-index order — bit-identical to testing each
    /// candidate sequentially.
    pub fn test_all(&mut self, evaluator: &Evaluator<'_>, n: u64, min_trials: u64) {
        let mut requests = Vec::new();
        let mut spans: Vec<(usize, usize)> = Vec::new();
        for (i, c) in self.candidates.iter().enumerate() {
            let plan = c.plan_trials(n, min_trials);
            if !plan.is_empty() {
                spans.push((i, plan.len()));
                requests.extend(plan);
            }
        }
        if requests.is_empty() {
            return;
        }
        let outcomes = evaluator.run_batch(&requests);
        let mut offset = 0;
        for (i, count) in spans {
            for outcome in &outcomes[offset..offset + count] {
                self.candidates[i].absorb(n, outcome);
            }
            offset += count;
        }
    }

    /// Adaptive time comparison between candidates `i` and `j` at size
    /// `n`, drawing extra trials through `runner` as the comparator
    /// requests them. Cached statistics are updated in place.
    ///
    /// # Panics
    ///
    /// Panics if `i == j` or either index is out of range.
    pub fn compare_time(
        &mut self,
        i: usize,
        j: usize,
        n: u64,
        runner: &dyn TrialRunner,
        comparator: &Comparator,
    ) -> CompareOutcome {
        assert_ne!(i, j, "cannot compare a candidate to itself");
        let cfg_i = self.candidates[i].config.clone();
        let cfg_j = self.candidates[j].config.clone();
        let st_i = self.candidates[i].take_stats(n);
        let st_j = self.candidates[j].take_stats(n);
        let (mut time_i, mut acc_i) = (st_i.time, st_i.accuracy);
        let (mut time_j, mut acc_j) = (st_j.time, st_j.accuracy);
        let mut idx_i = time_i.count();
        let mut idx_j = time_j.count();
        let outcome = {
            let mut draw_i = || {
                let out = runner.run_trial(&cfg_i, n, trial_seed(n, idx_i));
                idx_i += 1;
                acc_i.push(out.accuracy);
                out.time
            };
            let mut draw_j = || {
                let out = runner.run_trial(&cfg_j, n, trial_seed(n, idx_j));
                idx_j += 1;
                acc_j.push(out.accuracy);
                out.time
            };
            comparator.compare(&mut time_i, &mut draw_i, &mut time_j, &mut draw_j)
        };
        self.candidates[i].put_stats(
            n,
            SizeStats {
                time: time_i,
                accuracy: acc_i,
            },
        );
        self.candidates[j].put_stats(
            n,
            SizeStats {
                time: time_j,
                accuracy: acc_j,
            },
        );
        outcome
    }

    /// The pruning phase (§5.5.4): for each accuracy bin keep the
    /// fastest `keep_per_bin` candidates that meet the bin's target at
    /// size `n`; candidates in no keep-set are removed. The single
    /// highest-accuracy candidate is always retained so that guided
    /// mutation has material to work with even when no bin is met yet
    /// (a liveness safety net; the paper reports an error to the user in
    /// the equivalent situation, which the tuner does at the end of
    /// training instead).
    ///
    /// All bins' fastest-K selections run as one tournament session:
    /// each round's pending comparator draws — across every bin and
    /// active pair — execute as a single [`Evaluator`] batch on the
    /// pool, sharing the trial memo. Plan-then-execute with merges in
    /// candidate-index order keeps parallel pruning bit-identical to
    /// sequential.
    pub fn prune(
        &mut self,
        n: u64,
        bins: &AccuracyBins,
        keep_per_bin: usize,
        evaluator: &Evaluator<'_>,
        comparator: &Comparator,
    ) -> PruneReport {
        let mut report = PruneReport::default();
        if self.candidates.len() <= 1 {
            return report;
        }
        let selections: Vec<Selection> = bins
            .targets()
            .iter()
            .map(|&target| {
                let qualifying: Vec<usize> = (0..self.candidates.len())
                    .filter(|&i| self.candidates[i].meets_target(n, target))
                    .collect();
                Selection::new(&self.candidates, qualifying, keep_per_bin, n)
            })
            .collect();
        let kept_per_bin = run_selections(
            &mut self.candidates,
            selections,
            n,
            evaluator,
            comparator,
            &mut report,
        );
        let mut keep: BTreeSet<usize> = kept_per_bin.into_iter().flatten().collect();
        if let Some(best) = self.best_accuracy_index(n) {
            keep.insert(best);
        }
        let before = self.candidates.len();
        let mut idx = 0;
        self.candidates.retain(|_| {
            let kept = keep.contains(&idx);
            idx += 1;
            kept
        });
        report.removed = (before - self.candidates.len()) as u64;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_config::{Schema, Value};
    use pb_runtime::{CostModel, ExecCtx, Transform, TransformRunner};
    use rand::rngs::SmallRng;

    /// Cost = `level * n`, accuracy = `level / 10`: a clean frontier
    /// where higher accuracy always costs more.
    struct Frontier;

    impl Transform for Frontier {
        type Input = ();
        type Output = f64;
        fn name(&self) -> &str {
            "frontier"
        }
        fn schema(&self) -> Schema {
            let mut s = Schema::new("frontier");
            s.add_accuracy_variable("level", 1, 10);
            s
        }
        fn generate_input(&self, _n: u64, _rng: &mut SmallRng) {}
        fn execute(&self, _i: &(), ctx: &mut ExecCtx<'_>) -> f64 {
            let level = ctx.param("level").unwrap() as f64;
            ctx.charge(level * ctx.size() as f64);
            level / 10.0
        }
        fn accuracy(&self, _i: &(), o: &f64) -> f64 {
            *o
        }
    }

    fn population_with_levels(
        runner: &TransformRunner<Frontier>,
        levels: &[i64],
        n: u64,
    ) -> Population {
        let schema = runner.schema();
        let mut pop = Population::new();
        for (i, &level) in levels.iter().enumerate() {
            let mut config = schema.default_config();
            config
                .set_by_name(schema, "level", Value::Int(level))
                .unwrap();
            pop.add(Candidate::new(i as u64, config));
        }
        let evaluator = Evaluator::new(runner, crate::exec::EvalMode::Sequential, true);
        pop.test_all(&evaluator, n, 3);
        pop
    }

    #[test]
    fn compare_time_orders_by_cost() {
        let runner = TransformRunner::new(Frontier, CostModel::Virtual);
        let mut pop = population_with_levels(&runner, &[2, 8], 16);
        let comparator = Comparator::default();
        assert_eq!(
            pop.compare_time(0, 1, 16, &runner, &comparator),
            CompareOutcome::Less
        );
        assert_eq!(
            pop.compare_time(1, 0, 16, &runner, &comparator),
            CompareOutcome::Greater
        );
    }

    #[test]
    fn prune_keeps_fastest_per_bin() {
        let runner = TransformRunner::new(Frontier, CostModel::Virtual);
        // Levels 1..=10; bins at 0.2 and 0.8 accuracy.
        let mut pop = population_with_levels(&runner, &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10], 16);
        let bins = AccuracyBins::new(vec![0.2, 0.8]);
        let comparator = Comparator::default();
        let evaluator = Evaluator::new(&runner, crate::exec::EvalMode::Sequential, true);
        let removed = pop.prune(16, &bins, 1, &evaluator, &comparator).removed;
        assert!(removed >= 7, "population should shrink, removed {removed}");
        // The fastest candidate meeting 0.2 is level 2; meeting 0.8 is
        // level 8; the best-accuracy safety net keeps level 10.
        let levels: Vec<i64> = pop
            .candidates()
            .iter()
            .map(|c| c.config.int(runner.schema(), "level").unwrap())
            .collect();
        assert!(levels.contains(&2), "levels kept: {levels:?}");
        assert!(levels.contains(&8), "levels kept: {levels:?}");
        assert!(levels.contains(&10), "levels kept: {levels:?}");
        assert_eq!(levels.len(), 3, "levels kept: {levels:?}");
    }

    #[test]
    fn prune_respects_keep_per_bin() {
        let runner = TransformRunner::new(Frontier, CostModel::Virtual);
        let mut pop = population_with_levels(&runner, &[3, 4, 5, 6, 7], 8);
        let bins = AccuracyBins::new(vec![0.3]);
        let comparator = Comparator::default();
        let evaluator = Evaluator::new(&runner, crate::exec::EvalMode::Sequential, true);
        pop.prune(8, &bins, 3, &evaluator, &comparator);
        let levels: Vec<i64> = pop
            .candidates()
            .iter()
            .map(|c| c.config.int(runner.schema(), "level").unwrap())
            .collect();
        // Fastest three meeting 0.3 are 3, 4, 5; plus best-accuracy 7.
        assert_eq!(levels, vec![3, 4, 5, 7]);
    }

    #[test]
    fn prune_never_empties_population() {
        let runner = TransformRunner::new(Frontier, CostModel::Virtual);
        let mut pop = population_with_levels(&runner, &[1, 2], 8);
        // Impossible bin: nothing qualifies.
        let bins = AccuracyBins::new(vec![99.0]);
        let comparator = Comparator::default();
        let evaluator = Evaluator::new(&runner, crate::exec::EvalMode::Sequential, true);
        pop.prune(8, &bins, 2, &evaluator, &comparator);
        assert_eq!(pop.len(), 1, "best-accuracy candidate survives");
        assert_eq!(
            pop.candidates()[0]
                .config
                .int(runner.schema(), "level")
                .unwrap(),
            2
        );
    }

    #[test]
    fn fastest_meeting_uses_cached_means() {
        let runner = TransformRunner::new(Frontier, CostModel::Virtual);
        let pop = population_with_levels(&runner, &[2, 5, 9], 8);
        let idx = pop.fastest_meeting(8, 0.5).unwrap();
        assert_eq!(
            pop.candidates()[idx]
                .config
                .int(runner.schema(), "level")
                .unwrap(),
            5
        );
        assert!(pop.fastest_meeting(8, 0.95).is_none());
    }

    #[test]
    fn nan_statistics_never_shadow_the_frontier() {
        let runner = TransformRunner::new(Frontier, CostModel::Virtual);
        let mut pop = population_with_levels(&runner, &[2, 5], 8);
        // A corrupted candidate: NaN mean accuracy and NaN mean time,
        // but enough (bogus) accuracy mass that `meets_target` where a
        // NaN would poison `partial_cmp`-based selection.
        let mut config = runner.schema().default_config();
        config
            .set_by_name(runner.schema(), "level", Value::Int(9))
            .unwrap();
        let mut broken = Candidate::new(99, config);
        let stats = broken.stats_mut(8);
        stats.time.push(f64::NAN);
        stats.accuracy.push(f64::NAN);
        pop.add(broken);
        // NaN accuracy loses `best_accuracy_index` to any real value.
        let best = pop.best_accuracy_index(8).unwrap();
        assert_eq!(
            pop.candidates()[best]
                .config
                .int(runner.schema(), "level")
                .unwrap(),
            5
        );
        // NaN mean accuracy never qualifies, and even if a NaN-timed
        // candidate qualified it must not be reported as fastest.
        let idx = pop.fastest_meeting(8, 0.2).unwrap();
        assert_eq!(
            pop.candidates()[idx]
                .config
                .int(runner.schema(), "level")
                .unwrap(),
            2
        );
        // With *only* NaN candidates, selection still terminates.
        let mut only_nan = Population::new();
        let mut c = Candidate::new(0, runner.schema().default_config());
        c.stats_mut(8).accuracy.push(f64::NAN);
        c.stats_mut(8).time.push(f64::NAN);
        only_nan.add(c);
        assert_eq!(only_nan.best_accuracy_index(8), Some(0));
    }

    /// A transform with a wide, size-independent cost spread:
    /// cost = `level`, accuracy = `level / 1000`.
    struct Spread;

    impl Transform for Spread {
        type Input = ();
        type Output = f64;
        fn name(&self) -> &str {
            "spread"
        }
        fn schema(&self) -> Schema {
            let mut s = Schema::new("spread");
            s.add_accuracy_variable("level", 1, 1000);
            s
        }
        fn generate_input(&self, _n: u64, _rng: &mut SmallRng) {}
        fn execute(&self, _i: &(), ctx: &mut ExecCtx<'_>) -> f64 {
            let level = ctx.param("level").unwrap() as f64;
            ctx.charge(level);
            level / 1000.0
        }
        fn accuracy(&self, _i: &(), o: &f64) -> f64 {
            *o
        }
    }

    /// §5.5.4 step-4 regression: the promotion pivot must be the K-th
    /// KEEP element, snapshotted *before* any promotion. The old code
    /// compared each DISCARD element against a moving `keep.last()` —
    /// the most recently promoted, unsorted element — so after a fast
    /// candidate was promoted, later DISCARD elements were compared
    /// against *it* instead of the K-th KEEP element and could be
    /// wrongly rejected.
    ///
    /// Setup (K = 2, true costs in parentheses): cached means lie so
    /// the rough sort keeps [a1 (500), a2 (900)] and discards
    /// [p (10), d (20)] in that order. Promotions against the fixed
    /// pivot a2 admit both p and d; the final sort + truncate keeps
    /// {p, d}. The moving-pivot code compared d against the freshly
    /// promoted p, could not distinguish them within budget, rejected
    /// d, and kept {p, a1} — retaining a candidate 25x slower than d.
    #[test]
    fn promotion_pivot_is_fixed_not_moving() {
        let runner = TransformRunner::new(Spread, CostModel::Virtual);
        let schema = runner.schema();
        let n = 4;
        // (level = true cost, bogus cached time): rough order a1, a2, p, d.
        let plan: [(i64, f64); 4] = [(500, 500.0), (900, 900.0), (10, 950.0), (20, 980.0)];
        let mut pop = Population::new();
        for (i, &(level, fake_time)) in plan.iter().enumerate() {
            let mut config = schema.default_config();
            config
                .set_by_name(schema, "level", Value::Int(level))
                .unwrap();
            let mut c = Candidate::new(i as u64, config);
            let stats = c.stats_mut(n);
            stats.time.push(fake_time);
            stats.accuracy.push(level as f64 / 1000.0);
            pop.add(c);
        }
        let comparator = Comparator::new(pb_stats::ComparatorConfig {
            min_trials: 10,
            max_trials: 50,
            ..pb_stats::ComparatorConfig::default()
        });
        let evaluator = Evaluator::new(&runner, crate::exec::EvalMode::Sequential, true);
        let bins = AccuracyBins::new(vec![0.005]);
        let report = pop.prune(n, &bins, 2, &evaluator, &comparator);
        let mut levels: Vec<i64> = pop
            .candidates()
            .iter()
            .map(|c| c.config.int(schema, "level").unwrap())
            .collect();
        levels.sort_unstable();
        // Kept: the two truly fastest (10, 20) plus the best-accuracy
        // safety net (900). The moving-pivot bug kept 500 instead of 20.
        assert_eq!(levels, vec![10, 20, 900], "report: {report:?}");
        assert!(report.rounds > 0, "adaptive draws must have batched");
        assert!(report.draws > 0);
    }

    /// The prune path must execute its comparator draws through
    /// `Evaluator::run_batch` — visible as batches larger than one
    /// draw whenever several comparisons are pending at once.
    #[test]
    fn prune_batches_draws_across_pairs_and_bins() {
        let runner = TransformRunner::new(Spread, CostModel::Virtual);
        let schema = runner.schema();
        let n = 4;
        let mut pop = Population::new();
        // Eight candidates with one misleading cached trial each, so
        // every adaptive comparison needs fresh draws.
        for (i, level) in [40i64, 80, 120, 160, 200, 240, 280, 320].iter().enumerate() {
            let mut config = schema.default_config();
            config
                .set_by_name(schema, "level", Value::Int(*level))
                .unwrap();
            let mut c = Candidate::new(i as u64, config);
            let stats = c.stats_mut(n);
            stats.time.push(1000.0 - *level as f64);
            stats.accuracy.push(*level as f64 / 1000.0);
            pop.add(c);
        }
        let comparator = Comparator::new(pb_stats::ComparatorConfig {
            min_trials: 5,
            max_trials: 25,
            ..pb_stats::ComparatorConfig::default()
        });
        let evaluator = Evaluator::new(&runner, crate::exec::EvalMode::Sequential, true);
        let bins = AccuracyBins::new(vec![0.01, 0.2]);
        let report = pop.prune(n, &bins, 2, &evaluator, &comparator);
        assert!(report.rounds > 0);
        assert!(
            report.max_batch > 1,
            "independent comparisons must batch their draws: {report:?}"
        );
        assert!(report.draws >= report.rounds);
    }
}
