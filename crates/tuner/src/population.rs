//! The candidate population and the accuracy-binned pruning procedure.
//!
//! Pruning (§5.5.4) keeps, for each accuracy bin required by the user,
//! the fastest `K` algorithms that meet the bin's requirement — a
//! discretized optimal frontier. Because comparisons can trigger
//! additional trials (§5.5.1), the pruning procedure avoids fully
//! sorting candidates that will be discarded:
//!
//! 1. roughly sort by mean performance without extra trials;
//! 2. split at the `K`-th element into KEEP and DISCARD;
//! 3. fully sort KEEP with the adaptive comparator;
//! 4. compare each DISCARD element to the `K`-th KEEP element, moving
//!    any faster ones into KEEP;
//! 5. fully sort KEEP again;
//! 6. keep the first `K`.

use crate::candidate::{trial_seed, Candidate, SizeStats};
use crate::exec::Evaluator;
use pb_config::AccuracyBins;
use pb_runtime::TrialRunner;
use pb_stats::{Comparator, CompareOutcome};
use std::collections::BTreeSet;

/// The tuner's population of candidate algorithms.
#[derive(Debug, Default)]
pub struct Population {
    candidates: Vec<Candidate>,
}

impl Population {
    /// Creates an empty population.
    pub fn new() -> Self {
        Population::default()
    }

    /// Adds a candidate.
    pub fn add(&mut self, candidate: Candidate) {
        self.candidates.push(candidate);
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// The candidates, in insertion order.
    pub fn candidates(&self) -> &[Candidate] {
        &self.candidates
    }

    /// Mutable access to the candidates.
    pub fn candidates_mut(&mut self) -> &mut [Candidate] {
        &mut self.candidates
    }

    /// Drops candidates past `len` (used by the tuner to reject a
    /// freshly appended child that lost its parent comparison).
    pub fn truncate(&mut self, len: usize) {
        self.candidates.truncate(len);
    }

    /// Index of the candidate with the highest mean accuracy at size
    /// `n`, or `None` if empty.
    pub fn best_accuracy_index(&self, n: u64) -> Option<usize> {
        (0..self.candidates.len()).max_by(|&a, &b| {
            self.candidates[a]
                .mean_accuracy(n)
                .partial_cmp(&self.candidates[b].mean_accuracy(n))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }

    /// Index of the fastest candidate meeting `target` accuracy at size
    /// `n` (by cached means; no extra trials).
    pub fn fastest_meeting(&self, n: u64, target: f64) -> Option<usize> {
        (0..self.candidates.len())
            .filter(|&i| self.candidates[i].meets_target(n, target))
            .min_by(|&a, &b| {
                self.candidates[a]
                    .mean_time(n)
                    .partial_cmp(&self.candidates[b].mean_time(n))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }

    /// Ensures every candidate has at least `min_trials` cached at `n`
    /// (the *testPopulation* phase of Figure 5).
    ///
    /// Plan-then-execute: the whole population's missing trials are
    /// collected into one batch, executed through `evaluator` (on the
    /// work-stealing pool in parallel mode), and merged back per
    /// candidate in trial-index order — bit-identical to testing each
    /// candidate sequentially.
    pub fn test_all(&mut self, evaluator: &Evaluator<'_>, n: u64, min_trials: u64) {
        let mut requests = Vec::new();
        let mut spans: Vec<(usize, usize)> = Vec::new();
        for (i, c) in self.candidates.iter().enumerate() {
            let plan = c.plan_trials(n, min_trials);
            if !plan.is_empty() {
                spans.push((i, plan.len()));
                requests.extend(plan);
            }
        }
        if requests.is_empty() {
            return;
        }
        let outcomes = evaluator.run_batch(&requests);
        let mut offset = 0;
        for (i, count) in spans {
            for outcome in &outcomes[offset..offset + count] {
                self.candidates[i].absorb(n, outcome);
            }
            offset += count;
        }
    }

    /// Adaptive time comparison between candidates `i` and `j` at size
    /// `n`, drawing extra trials through `runner` as the comparator
    /// requests them. Cached statistics are updated in place.
    ///
    /// # Panics
    ///
    /// Panics if `i == j` or either index is out of range.
    pub fn compare_time(
        &mut self,
        i: usize,
        j: usize,
        n: u64,
        runner: &dyn TrialRunner,
        comparator: &Comparator,
    ) -> CompareOutcome {
        assert_ne!(i, j, "cannot compare a candidate to itself");
        let cfg_i = self.candidates[i].config.clone();
        let cfg_j = self.candidates[j].config.clone();
        let st_i = self.candidates[i].take_stats(n);
        let st_j = self.candidates[j].take_stats(n);
        let (mut time_i, mut acc_i) = (st_i.time, st_i.accuracy);
        let (mut time_j, mut acc_j) = (st_j.time, st_j.accuracy);
        let mut idx_i = time_i.count();
        let mut idx_j = time_j.count();
        let outcome = {
            let mut draw_i = || {
                let out = runner.run_trial(&cfg_i, n, trial_seed(n, idx_i));
                idx_i += 1;
                acc_i.push(out.accuracy);
                out.time
            };
            let mut draw_j = || {
                let out = runner.run_trial(&cfg_j, n, trial_seed(n, idx_j));
                idx_j += 1;
                acc_j.push(out.accuracy);
                out.time
            };
            comparator.compare(&mut time_i, &mut draw_i, &mut time_j, &mut draw_j)
        };
        self.candidates[i].put_stats(
            n,
            SizeStats {
                time: time_i,
                accuracy: acc_i,
            },
        );
        self.candidates[j].put_stats(
            n,
            SizeStats {
                time: time_j,
                accuracy: acc_j,
            },
        );
        outcome
    }

    /// Sorts the index list ascending by time using the adaptive
    /// comparator (stable insertion sort; `Same` keeps original order).
    fn sort_indices_by_time(
        &mut self,
        indices: &mut [usize],
        n: u64,
        runner: &dyn TrialRunner,
        comparator: &Comparator,
    ) {
        for i in 1..indices.len() {
            let mut j = i;
            while j > 0 {
                let (a, b) = (indices[j - 1], indices[j]);
                if self.compare_time(b, a, n, runner, comparator) == CompareOutcome::Less {
                    indices.swap(j - 1, j);
                    j -= 1;
                } else {
                    break;
                }
            }
        }
    }

    /// The pruning phase (§5.5.4): for each accuracy bin keep the
    /// fastest `keep_per_bin` candidates that meet the bin's target at
    /// size `n`; candidates in no keep-set are removed. The single
    /// highest-accuracy candidate is always retained so that guided
    /// mutation has material to work with even when no bin is met yet
    /// (a liveness safety net; the paper reports an error to the user in
    /// the equivalent situation, which the tuner does at the end of
    /// training instead).
    ///
    /// Returns the number of candidates removed.
    pub fn prune(
        &mut self,
        n: u64,
        bins: &AccuracyBins,
        keep_per_bin: usize,
        runner: &dyn TrialRunner,
        comparator: &Comparator,
    ) -> usize {
        if self.candidates.len() <= 1 {
            return 0;
        }
        let mut keep: BTreeSet<usize> = BTreeSet::new();
        for &target in bins.targets() {
            let qualifying: Vec<usize> = (0..self.candidates.len())
                .filter(|&i| self.candidates[i].meets_target(n, target))
                .collect();
            for &i in self
                .fastest_k(qualifying, keep_per_bin, n, runner, comparator)
                .iter()
            {
                keep.insert(i);
            }
        }
        if let Some(best) = self.best_accuracy_index(n) {
            keep.insert(best);
        }
        let before = self.candidates.len();
        let mut idx = 0;
        self.candidates.retain(|_| {
            let kept = keep.contains(&idx);
            idx += 1;
            kept
        });
        before - self.candidates.len()
    }

    /// The six-step fastest-K selection from §5.5.4.
    fn fastest_k(
        &mut self,
        mut indices: Vec<usize>,
        k: usize,
        n: u64,
        runner: &dyn TrialRunner,
        comparator: &Comparator,
    ) -> Vec<usize> {
        if indices.len() <= k {
            return indices;
        }
        // Step 1: rough sort by cached mean time (no extra trials).
        indices.sort_by(|&a, &b| {
            self.candidates[a]
                .mean_time(n)
                .partial_cmp(&self.candidates[b].mean_time(n))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        // Step 2: split at the Kth element.
        let discard = indices.split_off(k);
        let mut keep = indices;
        // Step 3: fully sort KEEP with adaptive confidence.
        self.sort_indices_by_time(&mut keep, n, runner, comparator);
        // Step 4: promote any DISCARD element faster than the Kth.
        let mut promoted = false;
        for &d in &discard {
            let kth = *keep.last().expect("keep has k elements");
            if self.compare_time(d, kth, n, runner, comparator) == CompareOutcome::Less {
                keep.push(d);
                promoted = true;
            }
        }
        // Step 5: re-sort if anything was promoted.
        if promoted {
            self.sort_indices_by_time(&mut keep, n, runner, comparator);
        }
        // Step 6: first K.
        keep.truncate(k);
        keep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_config::{Schema, Value};
    use pb_runtime::{CostModel, ExecCtx, Transform, TransformRunner};
    use rand::rngs::SmallRng;

    /// Cost = `level * n`, accuracy = `level / 10`: a clean frontier
    /// where higher accuracy always costs more.
    struct Frontier;

    impl Transform for Frontier {
        type Input = ();
        type Output = f64;
        fn name(&self) -> &str {
            "frontier"
        }
        fn schema(&self) -> Schema {
            let mut s = Schema::new("frontier");
            s.add_accuracy_variable("level", 1, 10);
            s
        }
        fn generate_input(&self, _n: u64, _rng: &mut SmallRng) {}
        fn execute(&self, _i: &(), ctx: &mut ExecCtx<'_>) -> f64 {
            let level = ctx.param("level").unwrap() as f64;
            ctx.charge(level * ctx.size() as f64);
            level / 10.0
        }
        fn accuracy(&self, _i: &(), o: &f64) -> f64 {
            *o
        }
    }

    fn population_with_levels(
        runner: &TransformRunner<Frontier>,
        levels: &[i64],
        n: u64,
    ) -> Population {
        let schema = runner.schema();
        let mut pop = Population::new();
        for (i, &level) in levels.iter().enumerate() {
            let mut config = schema.default_config();
            config
                .set_by_name(schema, "level", Value::Int(level))
                .unwrap();
            pop.add(Candidate::new(i as u64, config));
        }
        let evaluator = Evaluator::new(runner, crate::exec::EvalMode::Sequential, true);
        pop.test_all(&evaluator, n, 3);
        pop
    }

    #[test]
    fn compare_time_orders_by_cost() {
        let runner = TransformRunner::new(Frontier, CostModel::Virtual);
        let mut pop = population_with_levels(&runner, &[2, 8], 16);
        let comparator = Comparator::default();
        assert_eq!(
            pop.compare_time(0, 1, 16, &runner, &comparator),
            CompareOutcome::Less
        );
        assert_eq!(
            pop.compare_time(1, 0, 16, &runner, &comparator),
            CompareOutcome::Greater
        );
    }

    #[test]
    fn prune_keeps_fastest_per_bin() {
        let runner = TransformRunner::new(Frontier, CostModel::Virtual);
        // Levels 1..=10; bins at 0.2 and 0.8 accuracy.
        let mut pop = population_with_levels(&runner, &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10], 16);
        let bins = AccuracyBins::new(vec![0.2, 0.8]);
        let comparator = Comparator::default();
        let removed = pop.prune(16, &bins, 1, &runner, &comparator);
        assert!(removed >= 7, "population should shrink, removed {removed}");
        // The fastest candidate meeting 0.2 is level 2; meeting 0.8 is
        // level 8; the best-accuracy safety net keeps level 10.
        let levels: Vec<i64> = pop
            .candidates()
            .iter()
            .map(|c| c.config.int(runner.schema(), "level").unwrap())
            .collect();
        assert!(levels.contains(&2), "levels kept: {levels:?}");
        assert!(levels.contains(&8), "levels kept: {levels:?}");
        assert!(levels.contains(&10), "levels kept: {levels:?}");
        assert_eq!(levels.len(), 3, "levels kept: {levels:?}");
    }

    #[test]
    fn prune_respects_keep_per_bin() {
        let runner = TransformRunner::new(Frontier, CostModel::Virtual);
        let mut pop = population_with_levels(&runner, &[3, 4, 5, 6, 7], 8);
        let bins = AccuracyBins::new(vec![0.3]);
        let comparator = Comparator::default();
        pop.prune(8, &bins, 3, &runner, &comparator);
        let levels: Vec<i64> = pop
            .candidates()
            .iter()
            .map(|c| c.config.int(runner.schema(), "level").unwrap())
            .collect();
        // Fastest three meeting 0.3 are 3, 4, 5; plus best-accuracy 7.
        assert_eq!(levels, vec![3, 4, 5, 7]);
    }

    #[test]
    fn prune_never_empties_population() {
        let runner = TransformRunner::new(Frontier, CostModel::Virtual);
        let mut pop = population_with_levels(&runner, &[1, 2], 8);
        // Impossible bin: nothing qualifies.
        let bins = AccuracyBins::new(vec![99.0]);
        let comparator = Comparator::default();
        pop.prune(8, &bins, 2, &runner, &comparator);
        assert_eq!(pop.len(), 1, "best-accuracy candidate survives");
        assert_eq!(
            pop.candidates()[0]
                .config
                .int(runner.schema(), "level")
                .unwrap(),
            2
        );
    }

    #[test]
    fn fastest_meeting_uses_cached_means() {
        let runner = TransformRunner::new(Frontier, CostModel::Virtual);
        let pop = population_with_levels(&runner, &[2, 5, 9], 8);
        let idx = pop.fastest_meeting(8, 0.5).unwrap();
        assert_eq!(
            pop.candidates()[idx]
                .config
                .int(runner.schema(), "level")
                .unwrap(),
            5
        );
        assert!(pop.fastest_meeting(8, 0.95).is_none());
    }
}
