//! The candidate population and the accuracy-binned pruning procedure.
//!
//! Pruning (§5.5.4) keeps, for each accuracy bin required by the user,
//! the fastest `K` algorithms that meet the bin's requirement — a
//! discretized optimal frontier. Because comparisons can trigger
//! additional trials (§5.5.1), the pruning procedure avoids fully
//! sorting candidates that will be discarded:
//!
//! 1. roughly sort by mean performance without extra trials;
//! 2. split at the `K`-th element into KEEP and DISCARD;
//! 3. fully sort KEEP with the adaptive comparator;
//! 4. compare each DISCARD element to the `K`-th KEEP element (a
//!    fixed pivot, snapshotted before any promotion), moving any
//!    faster ones into KEEP;
//! 5. fully sort KEEP again;
//! 6. keep the first `K`.
//!
//! The selection runs as comparison-arena rounds (see [`crate::arena`]
//! and [`crate::tournament`]): all bins' pending comparator draws
//! execute as one [`Evaluator`] batch per round on the work-stealing
//! pool, and pair verdicts memoize for the duration of the prune call.

use crate::arena::{Arena, ArenaReport, Contest, PairContest};
use crate::candidate::Candidate;
use crate::exec::Evaluator;
use crate::tournament::{PruneReport, Selection};
use pb_config::AccuracyBins;
use pb_stats::{total_cmp_nan_first, total_cmp_nan_last, welch_t_test, Comparator, CompareOutcome};
use std::collections::{BTreeMap, BTreeSet};

/// The tuner's population of candidate algorithms.
#[derive(Debug, Default)]
pub struct Population {
    candidates: Vec<Candidate>,
}

impl Population {
    /// Creates an empty population.
    pub fn new() -> Self {
        Population::default()
    }

    /// Adds a candidate.
    pub fn add(&mut self, candidate: Candidate) {
        self.candidates.push(candidate);
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// The candidates, in insertion order.
    pub fn candidates(&self) -> &[Candidate] {
        &self.candidates
    }

    /// Mutable access to the candidates.
    pub fn candidates_mut(&mut self) -> &mut [Candidate] {
        &mut self.candidates
    }

    /// Keeps only the candidates whose index satisfies `keep`,
    /// preserving order (used by the tuner to drop appended children
    /// that lost their parent comparison).
    pub fn retain_indexed(&mut self, mut keep: impl FnMut(usize) -> bool) {
        let mut idx = 0;
        self.candidates.retain(|_| {
            let kept = keep(idx);
            idx += 1;
            kept
        });
    }

    /// Index of the candidate with the highest mean accuracy at size
    /// `n`, or `None` if empty.
    ///
    /// Selection is a total order (`f64::total_cmp`) with NaN sorting
    /// last: a candidate whose mean accuracy is NaN can never shadow
    /// one with a real measurement.
    pub fn best_accuracy_index(&self, n: u64) -> Option<usize> {
        (0..self.candidates.len()).max_by(|&a, &b| {
            total_cmp_nan_first(
                self.candidates[a].mean_accuracy(n),
                self.candidates[b].mean_accuracy(n),
            )
        })
    }

    /// Index of the fastest candidate meeting `target` accuracy at size
    /// `n` (by cached means; no extra trials). NaN mean times sort
    /// last, so a NaN-timed candidate is never reported as fastest
    /// while a finitely-timed one qualifies.
    pub fn fastest_meeting(&self, n: u64, target: f64) -> Option<usize> {
        (0..self.candidates.len())
            .filter(|&i| self.candidates[i].meets_target(n, target))
            .min_by(|&a, &b| {
                total_cmp_nan_last(
                    self.candidates[a].mean_time(n),
                    self.candidates[b].mean_time(n),
                )
            })
    }

    /// Ensures every candidate has at least `min_trials` cached at `n`
    /// (the *testPopulation* phase of Figure 5).
    ///
    /// Plan-then-execute: the whole population's missing trials are
    /// collected into one batch, executed through `evaluator` (on the
    /// work-stealing pool in parallel mode), and merged back per
    /// candidate in trial-index order — bit-identical to testing each
    /// candidate sequentially.
    pub fn test_all(&mut self, evaluator: &Evaluator<'_>, n: u64, min_trials: u64) {
        let mut requests = Vec::new();
        let mut spans: Vec<(usize, usize)> = Vec::new();
        for (i, c) in self.candidates.iter().enumerate() {
            let plan = c.plan_trials(n, min_trials);
            if !plan.is_empty() {
                spans.push((i, plan.len()));
                requests.extend(plan);
            }
        }
        if requests.is_empty() {
            return;
        }
        let outcomes = evaluator.run_batch(&requests);
        let mut offset = 0;
        for (i, count) in spans {
            for outcome in &outcomes[offset..offset + count] {
                self.candidates[i].absorb(n, outcome);
            }
            offset += count;
        }
    }

    /// Adaptive time comparison between candidates `i` and `j` at size
    /// `n`, drawing extra trials through `evaluator` as the comparator
    /// requests them. Cached statistics are updated in place.
    ///
    /// A convenience wrapper that opens a one-pair [`Arena`] session:
    /// the draw sequence is identical to the blocking §5.5.1 loop
    /// (each [`pb_stats::CompareStep`] is served before re-deciding),
    /// but the draws execute as evaluator batches — the min-trial fill
    /// runs as one batch instead of trial-by-trial.
    ///
    /// # Panics
    ///
    /// Panics if `i == j` or either index is out of range.
    pub fn compare_time(
        &mut self,
        i: usize,
        j: usize,
        n: u64,
        evaluator: &Evaluator<'_>,
        comparator: &Comparator,
    ) -> CompareOutcome {
        assert_ne!(i, j, "cannot compare a candidate to itself");
        let mut arena = Arena::new(evaluator, comparator);
        let mut pair = [PairContest::new(i, j)];
        arena.run(&mut self.candidates, n, &mut pair);
        pair[0].verdict.expect("arena runs contests to completion")
    }

    /// Decides one round of child-vs-parent merges (§5.5.2 phase 3)
    /// through the comparison arena. The last `parent_of.len()`
    /// candidates are the round's children, in plan order;
    /// `parent_of[k]` is the population index of child `k`'s parent.
    /// Returns each child's accept verdict — faster than its parent
    /// (adaptive time comparison) or more accurate (Welch's t-test at
    /// `alpha`) — plus the arena session's counters. The caller drops
    /// rejected children (see
    /// [`retain_indexed`](Population::retain_indexed)).
    ///
    /// Pairs are grouped by parent into plan-order *chains* and every
    /// chain runs as one [`MergeChain`] contest in a single arena
    /// session — the demand-merge rule: within a chain, pair `k + 1`
    /// only starts demanding draws once pair `k`'s verdict and accept
    /// decision are recorded (a later pair must see the parent's
    /// statistics exactly as the earlier comparison left them), while
    /// *across* chains every stalled pair deposits its draws into the
    /// same round batch. Same-parent pairs therefore no longer force
    /// whole-population waves: a chain never waits on unrelated
    /// parents' pairs, so rounds are wider and fewer, and each
    /// comparison still sees exactly the statistics the old
    /// one-blocking-comparison-at-a-time merge produced — identical
    /// draws, identical verdicts, just batched.
    pub fn merge_children(
        &mut self,
        parent_of: &[usize],
        n: u64,
        evaluator: &Evaluator<'_>,
        comparator: &Comparator,
        alpha: f64,
    ) -> (Vec<bool>, ArenaReport) {
        assert!(parent_of.len() <= self.candidates.len());
        let base = self.candidates.len() - parent_of.len();
        let mut accepted = vec![false; parent_of.len()];
        // Group plan indices by parent, preserving plan order within
        // each chain; BTreeMap keeps the contest order deterministic.
        let mut chains: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (k, &parent) in parent_of.iter().enumerate() {
            chains.entry(parent).or_default().push(k);
        }
        let mut contests: Vec<MergeChain> = chains
            .into_iter()
            .map(|(parent, links)| MergeChain::new(parent, links, base, n, alpha))
            .collect();
        let mut arena = Arena::new(evaluator, comparator);
        arena.run(&mut self.candidates, n, &mut contests);
        for chain in contests {
            for (k, accept) in chain.into_decisions() {
                accepted[k] = accept;
            }
        }
        (accepted, arena.report())
    }

    /// The pruning phase (§5.5.4): for each accuracy bin keep the
    /// fastest `keep_per_bin` candidates that meet the bin's target at
    /// size `n`; candidates in no keep-set are removed. The single
    /// highest-accuracy candidate is always retained so that guided
    /// mutation has material to work with even when no bin is met yet
    /// (a liveness safety net; the paper reports an error to the user in
    /// the equivalent situation, which the tuner does at the end of
    /// training instead).
    ///
    /// All bins' fastest-K selections run as one arena session: each
    /// round's pending comparator draws — across every bin and active
    /// pair — execute as a single [`Evaluator`] batch on the pool,
    /// sharing the trial memo, and pair verdicts memoize for the whole
    /// call (a pair decided during the KEEP sort is never re-tested
    /// during the post-promotion re-sort). Plan-then-execute with
    /// merges in candidate-index order keeps parallel pruning
    /// bit-identical to sequential.
    pub fn prune(
        &mut self,
        n: u64,
        bins: &AccuracyBins,
        keep_per_bin: usize,
        evaluator: &Evaluator<'_>,
        comparator: &Comparator,
    ) -> PruneReport {
        let mut report = PruneReport::default();
        if self.candidates.len() <= 1 {
            return report;
        }
        let mut selections: Vec<Selection> = bins
            .targets()
            .iter()
            .map(|&target| {
                let qualifying: Vec<usize> = (0..self.candidates.len())
                    .filter(|&i| self.candidates[i].meets_target(n, target))
                    .collect();
                Selection::new(&self.candidates, qualifying, keep_per_bin, n)
            })
            .collect();
        let mut arena = Arena::new(evaluator, comparator);
        arena.run(&mut self.candidates, n, &mut selections);
        report.arena = arena.report();
        let mut keep: BTreeSet<usize> = selections
            .into_iter()
            .flat_map(Selection::into_result)
            .collect();
        if let Some(best) = self.best_accuracy_index(n) {
            keep.insert(best);
        }
        let before = self.candidates.len();
        self.retain_indexed(|idx| keep.contains(&idx));
        report.removed = (before - self.candidates.len()) as u64;
        report
    }
}

/// One parent's plan-order chain of child-vs-parent merge pairs,
/// resumable as a [`Contest`] (see
/// [`merge_children`](Population::merge_children)).
///
/// The chain is the unit of the demand-merge rule: pair `k + 1` is
/// gated on pair `k`'s complete decision, because both the comparator
/// (more parent time samples) and the Welch accuracy test (more parent
/// accuracy samples) are sensitive to the trials earlier pairs drew on
/// the shared parent. Everything *between* chains is free to
/// interleave — chains touch disjoint candidates, so their draw
/// demands batch together without affecting any decision.
struct MergeChain {
    /// Population index of the shared parent.
    parent: usize,
    /// Plan indices `k` of this parent's children, in plan order.
    links: Vec<usize>,
    /// Accept decisions for `links[..decided.len()]`, recorded at the
    /// moment each pair's verdict landed.
    decided: Vec<bool>,
    /// First index of the children block in the population.
    base: usize,
    n: u64,
    alpha: f64,
}

impl MergeChain {
    fn new(parent: usize, links: Vec<usize>, base: usize, n: u64, alpha: f64) -> Self {
        let decided = Vec::with_capacity(links.len());
        MergeChain {
            parent,
            links,
            decided,
            base,
            n,
            alpha,
        }
    }

    /// `(plan index, accepted)` per link, once the chain completed.
    fn into_decisions(self) -> impl Iterator<Item = (usize, bool)> {
        debug_assert_eq!(self.decided.len(), self.links.len());
        self.links.into_iter().zip(self.decided)
    }
}

impl Contest for MergeChain {
    fn advance(
        &mut self,
        cmp: &mut dyn FnMut(usize, usize) -> Option<CompareOutcome>,
        cands: &[Candidate],
    ) -> bool {
        while self.decided.len() < self.links.len() {
            let k = self.links[self.decided.len()];
            let child = self.base + k;
            let Some(verdict) = cmp(child, self.parent) else {
                return false;
            };
            // Decide acceptance *now*: the statistics visible at this
            // instant are exactly what the blocking sequential merge
            // saw after deciding this pair, before any later pair drew
            // more trials on the parent.
            let faster = verdict == CompareOutcome::Less;
            let more_accurate = {
                let child = cands[child].stats(self.n).expect("child was tested");
                let parent = cands[self.parent].stats(self.n).expect("parent was tested");
                let test = welch_t_test(&child.accuracy, &parent.accuracy);
                test.rejects_equality(self.alpha) && child.accuracy.mean() > parent.accuracy.mean()
            };
            self.decided.push(faster || more_accurate);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_config::{Schema, Value};
    use pb_runtime::{CostModel, ExecCtx, Transform, TransformRunner};
    use rand::rngs::SmallRng;

    /// Cost = `level * n`, accuracy = `level / 10`: a clean frontier
    /// where higher accuracy always costs more.
    struct Frontier;

    impl Transform for Frontier {
        type Input = ();
        type Output = f64;
        fn name(&self) -> &str {
            "frontier"
        }
        fn schema(&self) -> Schema {
            let mut s = Schema::new("frontier");
            s.add_accuracy_variable("level", 1, 10);
            s
        }
        fn generate_input(&self, _n: u64, _rng: &mut SmallRng) {}
        fn execute(&self, _i: &(), ctx: &mut ExecCtx<'_>) -> f64 {
            let level = ctx.param("level").unwrap() as f64;
            ctx.charge(level * ctx.size() as f64);
            level / 10.0
        }
        fn accuracy(&self, _i: &(), o: &f64) -> f64 {
            *o
        }
    }

    fn population_with_levels(
        runner: &TransformRunner<Frontier>,
        levels: &[i64],
        n: u64,
    ) -> Population {
        let schema = runner.schema();
        let mut pop = Population::new();
        for (i, &level) in levels.iter().enumerate() {
            let mut config = schema.default_config();
            config
                .set_by_name(schema, "level", Value::Int(level))
                .unwrap();
            pop.add(Candidate::new(i as u64, config));
        }
        let evaluator = Evaluator::new(runner, crate::exec::EvalMode::Sequential, true);
        pop.test_all(&evaluator, n, 3);
        pop
    }

    #[test]
    fn compare_time_orders_by_cost() {
        let runner = TransformRunner::new(Frontier, CostModel::Virtual);
        let mut pop = population_with_levels(&runner, &[2, 8], 16);
        let comparator = Comparator::default();
        let evaluator = Evaluator::new(&runner, crate::exec::EvalMode::Sequential, true);
        assert_eq!(
            pop.compare_time(0, 1, 16, &evaluator, &comparator),
            CompareOutcome::Less
        );
        assert_eq!(
            pop.compare_time(1, 0, 16, &evaluator, &comparator),
            CompareOutcome::Greater
        );
    }

    #[test]
    fn prune_keeps_fastest_per_bin() {
        let runner = TransformRunner::new(Frontier, CostModel::Virtual);
        // Levels 1..=10; bins at 0.2 and 0.8 accuracy.
        let mut pop = population_with_levels(&runner, &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10], 16);
        let bins = AccuracyBins::new(vec![0.2, 0.8]);
        let comparator = Comparator::default();
        let evaluator = Evaluator::new(&runner, crate::exec::EvalMode::Sequential, true);
        let removed = pop.prune(16, &bins, 1, &evaluator, &comparator).removed;
        assert!(removed >= 7, "population should shrink, removed {removed}");
        // The fastest candidate meeting 0.2 is level 2; meeting 0.8 is
        // level 8; the best-accuracy safety net keeps level 10.
        let levels: Vec<i64> = pop
            .candidates()
            .iter()
            .map(|c| c.config.int(runner.schema(), "level").unwrap())
            .collect();
        assert!(levels.contains(&2), "levels kept: {levels:?}");
        assert!(levels.contains(&8), "levels kept: {levels:?}");
        assert!(levels.contains(&10), "levels kept: {levels:?}");
        assert_eq!(levels.len(), 3, "levels kept: {levels:?}");
    }

    #[test]
    fn prune_respects_keep_per_bin() {
        let runner = TransformRunner::new(Frontier, CostModel::Virtual);
        let mut pop = population_with_levels(&runner, &[3, 4, 5, 6, 7], 8);
        let bins = AccuracyBins::new(vec![0.3]);
        let comparator = Comparator::default();
        let evaluator = Evaluator::new(&runner, crate::exec::EvalMode::Sequential, true);
        pop.prune(8, &bins, 3, &evaluator, &comparator);
        let levels: Vec<i64> = pop
            .candidates()
            .iter()
            .map(|c| c.config.int(runner.schema(), "level").unwrap())
            .collect();
        // Fastest three meeting 0.3 are 3, 4, 5; plus best-accuracy 7.
        assert_eq!(levels, vec![3, 4, 5, 7]);
    }

    #[test]
    fn prune_never_empties_population() {
        let runner = TransformRunner::new(Frontier, CostModel::Virtual);
        let mut pop = population_with_levels(&runner, &[1, 2], 8);
        // Impossible bin: nothing qualifies.
        let bins = AccuracyBins::new(vec![99.0]);
        let comparator = Comparator::default();
        let evaluator = Evaluator::new(&runner, crate::exec::EvalMode::Sequential, true);
        pop.prune(8, &bins, 2, &evaluator, &comparator);
        assert_eq!(pop.len(), 1, "best-accuracy candidate survives");
        assert_eq!(
            pop.candidates()[0]
                .config
                .int(runner.schema(), "level")
                .unwrap(),
            2
        );
    }

    #[test]
    fn fastest_meeting_uses_cached_means() {
        let runner = TransformRunner::new(Frontier, CostModel::Virtual);
        let pop = population_with_levels(&runner, &[2, 5, 9], 8);
        let idx = pop.fastest_meeting(8, 0.5).unwrap();
        assert_eq!(
            pop.candidates()[idx]
                .config
                .int(runner.schema(), "level")
                .unwrap(),
            5
        );
        assert!(pop.fastest_meeting(8, 0.95).is_none());
    }

    #[test]
    fn nan_statistics_never_shadow_the_frontier() {
        let runner = TransformRunner::new(Frontier, CostModel::Virtual);
        let mut pop = population_with_levels(&runner, &[2, 5], 8);
        // A corrupted candidate: NaN mean accuracy and NaN mean time,
        // but enough (bogus) accuracy mass that `meets_target` where a
        // NaN would poison `partial_cmp`-based selection.
        let mut config = runner.schema().default_config();
        config
            .set_by_name(runner.schema(), "level", Value::Int(9))
            .unwrap();
        let mut broken = Candidate::new(99, config);
        let stats = broken.stats_mut(8);
        stats.time.push(f64::NAN);
        stats.accuracy.push(f64::NAN);
        pop.add(broken);
        // NaN accuracy loses `best_accuracy_index` to any real value.
        let best = pop.best_accuracy_index(8).unwrap();
        assert_eq!(
            pop.candidates()[best]
                .config
                .int(runner.schema(), "level")
                .unwrap(),
            5
        );
        // NaN mean accuracy never qualifies, and even if a NaN-timed
        // candidate qualified it must not be reported as fastest.
        let idx = pop.fastest_meeting(8, 0.2).unwrap();
        assert_eq!(
            pop.candidates()[idx]
                .config
                .int(runner.schema(), "level")
                .unwrap(),
            2
        );
        // With *only* NaN candidates, selection still terminates.
        let mut only_nan = Population::new();
        let mut c = Candidate::new(0, runner.schema().default_config());
        c.stats_mut(8).accuracy.push(f64::NAN);
        c.stats_mut(8).time.push(f64::NAN);
        only_nan.add(c);
        assert_eq!(only_nan.best_accuracy_index(8), Some(0));
    }

    /// A transform with a wide, size-independent cost spread:
    /// cost = `level`, accuracy = `level / 1000`.
    struct Spread;

    impl Transform for Spread {
        type Input = ();
        type Output = f64;
        fn name(&self) -> &str {
            "spread"
        }
        fn schema(&self) -> Schema {
            let mut s = Schema::new("spread");
            s.add_accuracy_variable("level", 1, 1000);
            s
        }
        fn generate_input(&self, _n: u64, _rng: &mut SmallRng) {}
        fn execute(&self, _i: &(), ctx: &mut ExecCtx<'_>) -> f64 {
            let level = ctx.param("level").unwrap() as f64;
            ctx.charge(level);
            level / 1000.0
        }
        fn accuracy(&self, _i: &(), o: &f64) -> f64 {
            *o
        }
    }

    /// §5.5.4 step-4 regression: the promotion pivot must be the K-th
    /// KEEP element, snapshotted *before* any promotion. The old code
    /// compared each DISCARD element against a moving `keep.last()` —
    /// the most recently promoted, unsorted element — so after a fast
    /// candidate was promoted, later DISCARD elements were compared
    /// against *it* instead of the K-th KEEP element and could be
    /// wrongly rejected.
    ///
    /// Setup (K = 2, true costs in parentheses): cached means lie so
    /// the rough sort keeps [a1 (500), a2 (900)] and discards
    /// [p (10), d (20)] in that order. Promotions against the fixed
    /// pivot a2 admit both p and d; the final sort + truncate keeps
    /// {p, d}. The moving-pivot code compared d against the freshly
    /// promoted p, could not distinguish them within budget, rejected
    /// d, and kept {p, a1} — retaining a candidate 25x slower than d.
    #[test]
    fn promotion_pivot_is_fixed_not_moving() {
        let runner = TransformRunner::new(Spread, CostModel::Virtual);
        let schema = runner.schema();
        let n = 4;
        // (level = true cost, bogus cached time): rough order a1, a2, p, d.
        let plan: [(i64, f64); 4] = [(500, 500.0), (900, 900.0), (10, 950.0), (20, 980.0)];
        let mut pop = Population::new();
        for (i, &(level, fake_time)) in plan.iter().enumerate() {
            let mut config = schema.default_config();
            config
                .set_by_name(schema, "level", Value::Int(level))
                .unwrap();
            let mut c = Candidate::new(i as u64, config);
            let stats = c.stats_mut(n);
            stats.time.push(fake_time);
            stats.accuracy.push(level as f64 / 1000.0);
            pop.add(c);
        }
        let comparator = Comparator::new(pb_stats::ComparatorConfig {
            min_trials: 10,
            max_trials: 50,
            ..pb_stats::ComparatorConfig::default()
        });
        let evaluator = Evaluator::new(&runner, crate::exec::EvalMode::Sequential, true);
        let bins = AccuracyBins::new(vec![0.005]);
        let report = pop.prune(n, &bins, 2, &evaluator, &comparator);
        let mut levels: Vec<i64> = pop
            .candidates()
            .iter()
            .map(|c| c.config.int(schema, "level").unwrap())
            .collect();
        levels.sort_unstable();
        // Kept: the two truly fastest (10, 20) plus the best-accuracy
        // safety net (900). The moving-pivot bug kept 500 instead of 20.
        assert_eq!(levels, vec![10, 20, 900], "report: {report:?}");
        assert!(report.arena.rounds > 0, "adaptive draws must have batched");
        assert!(report.arena.draws > 0);
    }

    /// The prune path must execute its comparator draws through
    /// `Evaluator::run_batch` — visible as batches larger than one
    /// draw whenever several comparisons are pending at once.
    #[test]
    fn prune_batches_draws_across_pairs_and_bins() {
        let runner = TransformRunner::new(Spread, CostModel::Virtual);
        let schema = runner.schema();
        let n = 4;
        let mut pop = Population::new();
        // Eight candidates with one misleading cached trial each, so
        // every adaptive comparison needs fresh draws.
        for (i, level) in [40i64, 80, 120, 160, 200, 240, 280, 320].iter().enumerate() {
            let mut config = schema.default_config();
            config
                .set_by_name(schema, "level", Value::Int(*level))
                .unwrap();
            let mut c = Candidate::new(i as u64, config);
            let stats = c.stats_mut(n);
            stats.time.push(1000.0 - *level as f64);
            stats.accuracy.push(*level as f64 / 1000.0);
            pop.add(c);
        }
        let comparator = Comparator::new(pb_stats::ComparatorConfig {
            min_trials: 5,
            max_trials: 25,
            ..pb_stats::ComparatorConfig::default()
        });
        let evaluator = Evaluator::new(&runner, crate::exec::EvalMode::Sequential, true);
        let bins = AccuracyBins::new(vec![0.01, 0.2]);
        let report = pop.prune(n, &bins, 2, &evaluator, &comparator);
        assert!(report.arena.rounds > 0);
        assert!(
            report.arena.max_round > 1,
            "independent comparisons must batch their draws: {report:?}"
        );
        assert!(report.arena.draws >= report.arena.rounds);
    }
}
