//! Reproduction of *Language and Compiler Support for Auto-Tuning
//! Variable-Accuracy Algorithms* (Ansel et al., CGO 2011).
//!
//! This facade crate re-exports the workspace's components under one
//! roof, mirroring how the original PetaBricks distribution bundled the
//! language front-end, compiler analyses, autotuner, runtime, and
//! benchmark suite:
//!
//! * [`lang`] — PetaBricks-style language front-end with the
//!   variable-accuracy extensions (§2–3): lexer, parser, semantic
//!   analysis, choice dependency graph, training-info extraction, and an
//!   interpreter.
//! * [`config`] — choice configuration files, decision trees, accuracy
//!   bins (§4.2, §5.2).
//! * [`stats`] — the statistics engine behind adaptive candidate testing
//!   (§5.5.1).
//! * [`tuner`] — the accuracy-aware genetic autotuner (§5).
//! * [`runtime`] — execution of tuned transforms, accuracy guarantees
//!   (§3.3).
//! * [`trace`] — zero-perturbation structured tracing across all of
//!   the above, with Perfetto-loadable export.
//! * [`faults`] — seeded deterministic fault and noise injection for
//!   chaos-testing the tuner's trial isolation and robust statistics.
//! * [`linalg`] / [`multigrid`] — the numeric substrates the benchmarks
//!   need (the paper used LAPACK; we implement the routines from
//!   scratch).
//! * [`benchmarks`] — the six-benchmark suite from §6.1.
//!
//! # Quickstart
//!
//! ```
//! use petabricks::benchmarks::clustering::Clustering;
//! use petabricks::config::AccuracyBins;
//! use petabricks::runtime::{CostModel, TransformRunner};
//! use petabricks::tuner::{Autotuner, TunerOptions};
//!
//! let runner = TransformRunner::new(Clustering::default(), CostModel::Virtual);
//! let bins = AccuracyBins::new(vec![0.2, 0.5]);
//! let options = TunerOptions::fast_preset(64, 42);
//! let tuned = Autotuner::new(&runner, bins, options).tune().unwrap();
//! assert_eq!(tuned.entries().len(), 2);
//! ```

pub use pb_benchmarks as benchmarks;
pub use pb_config as config;
pub use pb_faults as faults;
pub use pb_lang as lang;
pub use pb_linalg as linalg;
pub use pb_multigrid as multigrid;
pub use pb_runtime as runtime;
pub use pb_stats as stats;
pub use pb_trace as trace;
pub use pb_tuner as tuner;
