//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace
//! vendors a minimal implementation of the `rand` 0.8 API surface it
//! actually uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] extension methods `gen` / `gen_range`. The
//! generator is xoshiro256** seeded through SplitMix64 — deterministic
//! per seed, which is all the tuner and tests require.

use std::ops::{Range, RangeInclusive};

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of RNGs from integer seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Samples one value uniformly over the type's natural range
    /// (`[0, 1)` for floats, the full domain for integers).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types uniformly sampleable from a bounded range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)` (`[lo, hi]` when `inclusive`).
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128 + if inclusive { 1 } else { 0 }) as u128;
                assert!(span > 0, "cannot sample from an empty range");
                // Modulo reduction: bias is irrelevant for tuning /
                // test workloads and keeps the stream simple.
                let r = rng.next_u64() as u128 % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo < hi || (_inclusive && lo <= hi), "cannot sample from an empty range");
                let u = <$t as Standard>::sample_standard(rng);
                let v = lo + u * (hi - lo);
                if v >= hi { lo } else { v }
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

/// Convenience extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` over its natural range.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! The generators offered by this stand-in.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (the role `SmallRng` plays
    /// in real `rand`: fast, seedable, not cryptographic).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(0..10usize);
            assert!(i < 10);
            let j = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&j));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn singleton_inclusive_range_works() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(rng.gen_range(4..=4usize), 4);
    }
}
