//! Offline stand-in for the `crossbeam` crate.
//!
//! Two APIs are provided — the subset this workspace uses:
//!
//! * [`thread::scope`], implemented on top of `std::thread::scope`
//!   (stabilized after crossbeam popularized the pattern);
//! * [`deque`], the work-stealing building blocks ([`deque::Injector`],
//!   [`deque::Worker`], [`deque::Stealer`]) behind
//!   `pb_runtime`'s thread pool. The stand-in uses mutex-protected
//!   queues rather than crossbeam's lock-free Chase-Lev deques; the
//!   API and ownership model match, only the synchronization strategy
//!   differs.

pub mod thread {
    //! Scoped threads.

    use std::any::Any;

    /// Handle for spawning threads inside a [`scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope
        /// handle (crossbeam's signature), allowing nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Creates a scope in which spawned threads may borrow from the
    /// enclosing stack frame; all threads are joined before it returns.
    ///
    /// Unlike crossbeam, a panicking child thread propagates its panic
    /// on join (std semantics) instead of surfacing it in the `Err`
    /// variant; callers that `.expect()` the result behave identically.
    ///
    /// # Errors
    ///
    /// Never returns `Err` (see above); the `Result` exists for
    /// crossbeam API compatibility.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1, 2, 3, 4];
            let mut out = vec![0; 4];
            super::scope(|s| {
                for (i, o) in data.iter().zip(out.chunks_mut(1)) {
                    s.spawn(move |_| o[0] = i * 10);
                }
            })
            .unwrap();
            assert_eq!(out, vec![10, 20, 30, 40]);
        }
    }
}

pub mod deque {
    //! Work-stealing queues: a shared [`Injector`] plus per-worker
    //! [`Worker`] deques with [`Stealer`] handles.
    //!
    //! The surface mirrors `crossbeam-deque`: workers pop their own
    //! queue cheaply, steal from the injector (optionally moving a
    //! batch into their local queue first), and steal single items
    //! from each other when both run dry.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The attempt lost a race and should be retried.
        ///
        /// The mutex-based stand-in never loses races, but callers
        /// written against crossbeam handle this variant, so it is
        /// kept for API fidelity.
        Retry,
    }

    impl<T> Steal<T> {
        /// Returns the stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }
    }

    /// The global FIFO queue tasks are injected into.
    #[derive(Debug, Default)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes a task onto the back of the queue.
        pub fn push(&self, task: T) {
            self.queue
                .lock()
                .expect("injector poisoned")
                .push_back(task);
        }

        /// Steals one task from the front of the queue.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("injector poisoned").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Steals a batch of tasks into `dest`'s local queue and pops
        /// one of them (the crossbeam idiom for refilling a worker).
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut queue = self.queue.lock().expect("injector poisoned");
            let first = match queue.pop_front() {
                Some(t) => t,
                None => return Steal::Empty,
            };
            // Move up to half of the remainder over with the popped task.
            let batch = queue.len().div_ceil(2).min(16);
            let mut dest_queue = dest.queue.lock().expect("worker poisoned");
            for _ in 0..batch {
                match queue.pop_front() {
                    Some(t) => dest_queue.push_back(t),
                    None => break,
                }
            }
            Steal::Success(first)
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("injector poisoned").is_empty()
        }
    }

    /// A worker's own FIFO queue. Owned by one thread; other threads
    /// take tasks through [`Stealer`] handles.
    #[derive(Debug)]
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates an empty FIFO worker queue.
        pub fn new_fifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Pushes a task onto the owner's end of the queue.
        pub fn push(&self, task: T) {
            self.queue.lock().expect("worker poisoned").push_back(task);
        }

        /// Pops a task from the owner's end of the queue.
        pub fn pop(&self) -> Option<T> {
            self.queue.lock().expect("worker poisoned").pop_front()
        }

        /// Creates a steal handle for other threads.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("worker poisoned").is_empty()
        }
    }

    /// Steals single tasks from the opposite end of a [`Worker`]'s
    /// queue.
    #[derive(Debug, Clone)]
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Stealer<T> {
        /// Steals one task from the victim's queue.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("worker poisoned").pop_back() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the victim's queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("worker poisoned").is_empty()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn injector_is_fifo() {
            let inj = Injector::new();
            inj.push(1);
            inj.push(2);
            assert_eq!(inj.steal(), Steal::Success(1));
            assert_eq!(inj.steal(), Steal::Success(2));
            assert_eq!(inj.steal(), Steal::Empty);
        }

        #[test]
        fn steal_batch_refills_worker() {
            let inj = Injector::new();
            for i in 0..6 {
                inj.push(i);
            }
            let w: Worker<i32> = Worker::new_fifo();
            assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
            assert!(!w.is_empty(), "a batch moved into the worker queue");
            let mut drained = Vec::new();
            while let Some(t) = w.pop() {
                drained.push(t);
            }
            // The rest is still reachable through the injector.
            while let Steal::Success(t) = inj.steal() {
                drained.push(t);
            }
            drained.sort_unstable();
            assert_eq!(drained, vec![1, 2, 3, 4, 5]);
        }

        #[test]
        fn stealer_takes_from_opposite_end() {
            let w = Worker::new_fifo();
            let s = w.stealer();
            w.push(1);
            w.push(2);
            w.push(3);
            assert_eq!(s.steal(), Steal::Success(3));
            assert_eq!(w.pop(), Some(1));
        }

        #[test]
        fn stealers_work_across_threads() {
            let w = Worker::new_fifo();
            for i in 0..100 {
                w.push(i);
            }
            let stealers: Vec<Stealer<i32>> = (0..4).map(|_| w.stealer()).collect();
            let total: usize = std::thread::scope(|scope| {
                stealers
                    .into_iter()
                    .map(|s| {
                        scope.spawn(move || {
                            let mut n = 0;
                            while s.steal().success().is_some() {
                                n += 1;
                            }
                            n
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .sum()
            });
            assert_eq!(total + w.queue.lock().unwrap().len(), 100);
        }
    }
}
