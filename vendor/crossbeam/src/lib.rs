//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`thread::scope`] is provided — the single API this workspace
//! uses — implemented on top of `std::thread::scope` (stabilized after
//! crossbeam popularized the pattern).

pub mod thread {
    //! Scoped threads.

    use std::any::Any;

    /// Handle for spawning threads inside a [`scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope
        /// handle (crossbeam's signature), allowing nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Creates a scope in which spawned threads may borrow from the
    /// enclosing stack frame; all threads are joined before it returns.
    ///
    /// Unlike crossbeam, a panicking child thread propagates its panic
    /// on join (std semantics) instead of surfacing it in the `Err`
    /// variant; callers that `.expect()` the result behave identically.
    ///
    /// # Errors
    ///
    /// Never returns `Err` (see above); the `Result` exists for
    /// crossbeam API compatibility.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1, 2, 3, 4];
            let mut out = vec![0; 4];
            super::scope(|s| {
                for (i, o) in data.iter().zip(out.chunks_mut(1)) {
                    s.spawn(move |_| o[0] = i * 10);
                }
            })
            .unwrap();
            assert_eq!(out, vec![10, 20, 30, 40]);
        }
    }
}
