//! Offline stand-in for `serde`.
//!
//! The build environment has no network access, so this crate provides
//! the minimal serialization surface the workspace uses: a JSON value
//! tree ([`json::Value`]), [`Serialize`]/[`Deserialize`] traits over
//! it, and `#[derive(Serialize, Deserialize)]` macros (re-exported from
//! the sibling `serde_derive` stand-in). It is *not* the real serde
//! data model — only round-tripping through `serde_json` is supported,
//! which is all the workspace's persistence layer needs.

pub use serde_derive::{Deserialize, Serialize};

pub mod json {
    //! The JSON value tree both traits serialize through.

    /// A parsed/in-memory JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// A number written without fraction or exponent.
        Int(i64),
        /// Any other number.
        Float(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, in insertion order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// Object field lookup.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The value as an `f64` (integers widen).
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Int(i) => Some(*i as f64),
                Value::Float(f) => Some(*f),
                _ => None,
            }
        }

        /// The value as an `i64` (floats with zero fraction narrow).
        pub fn as_i64(&self) -> Option<i64> {
            match self {
                Value::Int(i) => Some(*i),
                Value::Float(f) if f.fract() == 0.0 && f.is_finite() => Some(*f as i64),
                _ => None,
            }
        }
    }
}

use json::Value;

/// Serialization into the JSON value tree.
pub trait Serialize {
    /// This value as JSON.
    fn to_json(&self) -> Value;
}

/// Deserialization out of the JSON value tree.
pub trait Deserialize: Sized {
    /// Rebuilds the value from JSON.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the JSON shape does not
    /// match the type.
    fn from_json(v: &Value) -> Result<Self, String>;
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &Value) -> Result<Self, String> {
                let i = v.as_i64().ok_or_else(|| format!(
                    "expected integer, found {v:?}"
                ))?;
                <$t>::try_from(i).map_err(|_| format!(
                    "integer {i} out of range for {}", stringify!($t)
                ))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Serialize for u64 {
    fn to_json(&self) -> Value {
        match i64::try_from(*self) {
            Ok(i) => Value::Int(i),
            Err(_) => Value::Float(*self as f64),
        }
    }
}

impl Deserialize for u64 {
    fn from_json(v: &Value) -> Result<Self, String> {
        match v {
            Value::Int(i) => u64::try_from(*i).map_err(|_| format!("negative integer {i} for u64")),
            Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 => Ok(*f as u64),
            other => Err(format!("expected unsigned integer, found {other:?}")),
        }
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &Value) -> Result<Self, String> {
                v.as_f64().map(|f| f as $t).ok_or_else(|| format!(
                    "expected number, found {v:?}"
                ))
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json(v: &Value) -> Result<Self, String> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, found {other:?}")),
        }
    }
}

impl Serialize for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json(v: &Value) -> Result<Self, String> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(format!("expected string, found {other:?}")),
        }
    }
}

impl Serialize for str {
    fn to_json(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_json(&self) -> Value {
        (*self).to_json()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(v: &Value) -> Result<Self, String> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(v: &Value) -> Result<Self, String> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_json).collect(),
            other => Err(format!("expected array, found {other:?}")),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json(&self) -> Value {
        Value::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_json(v: &Value) -> Result<Self, String> {
        match v {
            Value::Arr(items) if items.len() == 2 => {
                Ok((A::from_json(&items[0])?, B::from_json(&items[1])?))
            }
            other => Err(format!("expected 2-element array, found {other:?}")),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_json(&self) -> Value {
        // Sorted for stable output.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Obj(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].to_json()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_json(v: &Value) -> Result<Self, String> {
        match v {
            Value::Obj(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_json(v)?)))
                .collect(),
            other => Err(format!("expected object, found {other:?}")),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_json(&self) -> Value {
        Value::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_json(v: &Value) -> Result<Self, String> {
        match v {
            Value::Obj(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_json(v)?)))
                .collect(),
            other => Err(format!("expected object, found {other:?}")),
        }
    }
}
