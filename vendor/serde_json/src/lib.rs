//! Offline stand-in for `serde_json`: JSON text ⇄ the stand-in
//! `serde::json::Value` tree, driven by the stand-in `Serialize` /
//! `Deserialize` traits. Supports the full JSON grammar this
//! workspace's persistence layer round-trips (objects, arrays,
//! strings with escapes, numbers, booleans, null).

use serde::json::Value;
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes to compact JSON.
///
/// # Errors
///
/// Never fails for the stand-in data model; the `Result` mirrors the
/// real API.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_json(), &mut out, None, 0);
    Ok(out)
}

/// Serializes to human-readable, indented JSON.
///
/// # Errors
///
/// Never fails for the stand-in data model; the `Result` mirrors the
/// real API.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_json(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value().map_err(Error)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_json(&v).map_err(Error)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    // Keep a fraction marker so floats re-parse as floats.
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&format!("{f}"));
                }
            } else {
                // JSON has no infinities/NaN; null round-trips to an
                // error on typed read, which is the closest behavior.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => write_seq(items.iter(), out, indent, level, ('[', ']'), write_value),
        Value::Obj(fields) => write_seq(
            fields.iter(),
            out,
            indent,
            level,
            ('{', '}'),
            |(k, v), o, i, l| {
                write_string(k, o);
                o.push(':');
                if i.is_some() {
                    o.push(' ');
                }
                write_value(v, o, i, l);
            },
        ),
    }
}

fn write_seq<T>(
    items: impl ExactSizeIterator<Item = T>,
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    delims: (char, char),
    mut write_item: impl FnMut(T, &mut String, Option<usize>, usize),
) {
    out.push(delims.0);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (level + 1)));
        }
        write_item(item, out, indent, level + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * level));
        }
    }
    out.push(delims.1);
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| format!("bad number `{text}`: {e}"))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|e| format!("bad number `{text}`: {e}"))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    // ASCII fast path: one byte, no UTF-8 validation.
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one multi-byte UTF-8 character, validating
                    // only its own bytes (validating the whole remaining
                    // input per character is quadratic on large inputs).
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(format!("invalid UTF-8 lead byte {b:#x}")),
                    };
                    let bytes = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or("truncated UTF-8 sequence")?;
                    let s = std::str::from_utf8(bytes).map_err(|e| e.to_string())?;
                    out.push(s.chars().next().expect("non-empty"));
                    self.pos += len;
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => return Err(format!("expected `,` or `]`, found {other:?}")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                other => return Err(format!("expected `,` or `}}`, found {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Value::Obj(vec![
            ("name".into(), Value::Str("hi \"there\"\n".into())),
            (
                "xs".into(),
                Value::Arr(vec![Value::Int(-3), Value::Float(1.5), Value::Bool(true)]),
            ),
            ("none".into(), Value::Null),
        ]);
        struct Raw(Value);
        impl serde::Serialize for Raw {
            fn to_json(&self) -> Value {
                self.0.clone()
            }
        }
        impl serde::Deserialize for Raw {
            fn from_json(v: &Value) -> Result<Self, String> {
                Ok(Raw(v.clone()))
            }
        }
        for render in [
            to_string(&Raw(v.clone())),
            to_string_pretty(&Raw(v.clone())),
        ] {
            let s = render.unwrap();
            let back: Raw = from_str(&s).unwrap();
            assert_eq!(back.0, v);
        }
    }

    #[test]
    fn floats_stay_floats() {
        let s = to_string(&2.0f64).unwrap();
        assert_eq!(s, "2.0");
        let f: f64 = from_str(&s).unwrap();
        assert_eq!(f, 2.0);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<f64>("[1,").is_err());
        assert!(from_str::<f64>("{\"a\": }").is_err());
        assert!(from_str::<f64>("1 garbage").is_err());
    }
}
