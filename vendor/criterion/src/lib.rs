//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function` / `bench_with_input`, `sample_size`, and
//! [`black_box`] — over a simple wall-clock harness: per sample the
//! closure runs in a timed batch, and the mean/min/max across samples
//! are printed. No statistics beyond that, but real measured time, so
//! relative comparisons (e.g. interpreter vs VM) remain meaningful.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{parameter}", function_name.into()))
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Things usable as a benchmark id.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Mean time per iteration of the last `iter` call.
    last_mean: Duration,
    results: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, collecting `samples` batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch-size calibration: aim for ~5ms per batch.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let batch =
            (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 100_000) as usize;

        self.results.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.results.push(start.elapsed() / batch as u32);
        }
        let total: Duration = self.results.iter().sum();
        self.last_mean = total / self.results.len().max(1) as u32;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Ignored (API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into_id(), |b| f(b));
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into_id(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: String, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            last_mean: Duration::ZERO,
            results: Vec::new(),
        };
        f(&mut bencher);
        let (mut lo, mut hi) = (Duration::MAX, Duration::ZERO);
        for &d in &bencher.results {
            lo = lo.min(d);
            hi = hi.max(d);
        }
        if bencher.results.is_empty() {
            lo = Duration::ZERO;
        }
        let full = format!("{}/{}", self.name, id);
        println!(
            "{full:<48} time: [{} {} {}]",
            fmt_duration(lo),
            fmt_duration(bencher.last_mean),
            fmt_duration(hi),
        );
        self.criterion.measurements.push((full, bencher.last_mean));
    }

    /// Ends the group (API compatibility; nothing to flush).
    pub fn finish(self) {}
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    /// `(full name, mean time)` per benchmark, in run order.
    pub measurements: Vec<(String, Duration)>,
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, &mut f);
        self
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
