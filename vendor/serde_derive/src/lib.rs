//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the stand-in `serde::Serialize` /
//! `serde::Deserialize` traits (JSON-value based) for plain structs and
//! enums. Supported shapes — the ones this workspace derives on:
//!
//! * named-field structs (with `#[serde(skip)]` fields, rebuilt via
//!   `Default` on deserialization),
//! * tuple structs (newtype → transparent; otherwise an array),
//! * enums with unit, tuple, and struct variants (externally tagged).
//!
//! No generics, lifetimes, or other serde attributes — the macro
//! fails loudly on anything it does not understand rather than
//! generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Serialize,
    Deserialize,
}

struct Field {
    name: String,
    skip: bool,
}

enum Variant {
    Unit(String),
    Tuple(String, usize),
    Struct(String, Vec<Field>),
}

enum Shape {
    Struct(Vec<Field>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

fn expand(input: TokenStream, dir: Direction) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match ident_at(&tokens, i) {
        Some(k) if k == "struct" || k == "enum" => k,
        other => panic!("serde stand-in derive: expected struct/enum, found {other:?}"),
    };
    i += 1;
    let name = ident_at(&tokens, i).expect("serde stand-in derive: missing type name");
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in derive: generic types are not supported");
    }

    let shape = if kind == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            other => panic!("serde stand-in derive: unsupported struct body {other:?}"),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde stand-in derive: unsupported enum body {other:?}"),
        }
    };

    let code = match dir {
        Direction::Serialize => gen_serialize(&name, &shape),
        Direction::Deserialize => gen_deserialize(&name, &shape),
    };
    code.parse()
        .expect("serde stand-in derive: generated code must parse")
}

fn ident_at(tokens: &[TokenTree], i: usize) -> Option<String> {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

/// Advances past `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Whether an attribute group (the `[...]` content) is `serde(skip)`.
fn is_skip_attr(tokens: &[TokenTree], i: usize) -> bool {
    let (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g))) = (tokens.get(i), tokens.get(i + 1))
    else {
        return false;
    };
    if p.as_char() != '#' || g.delimiter() != Delimiter::Bracket {
        return false;
    }
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    match (inner.first(), inner.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            args.stream()
                .into_iter()
                .any(|t| matches!(t, TokenTree::Ident(ref id) if id.to_string() == "skip"))
        }
        _ => false,
    }
}

/// Skips one type expression: everything up to a top-level `,`
/// (angle-bracket depth aware).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(t) = tokens.get(*i) {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut skip = false;
        while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            skip |= is_skip_attr(&tokens, i);
            i += 2;
        }
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(name) = ident_at(&tokens, i) else {
            break;
        };
        i += 1;
        assert!(
            matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "serde stand-in derive: expected `:` after field `{name}`"
        );
        i += 1;
        skip_type(&tokens, &mut i);
        i += 1; // the comma
        fields.push(Field { name, skip });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            // Trailing comma adds no field.
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 && idx + 1 < tokens.len() => {
                count += 1
            }
            _ => {}
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(name) = ident_at(&tokens, i) else {
            break;
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                variants.push(Variant::Tuple(name, count_tuple_fields(g.stream())));
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                variants.push(Variant::Struct(name, parse_named_fields(g.stream())));
                i += 1;
            }
            _ => variants.push(Variant::Unit(name)),
        }
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    variants
}

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Struct(fields) => {
            let mut s =
                String::from("let mut fields: Vec<(String, ::serde::json::Value)> = Vec::new();\n");
            for f in fields.iter().filter(|f| !f.skip) {
                s.push_str(&format!(
                    "fields.push((\"{0}\".to_string(), ::serde::Serialize::to_json(&self.{0})));\n",
                    f.name
                ));
            }
            s.push_str("::serde::json::Value::Obj(fields)");
            s
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_json(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_json(&self.{k})"))
                .collect();
            format!("::serde::json::Value::Arr(vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                match v {
                    Variant::Unit(vn) => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::json::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    Variant::Tuple(vn, 1) => arms.push_str(&format!(
                        "{name}::{vn}(f0) => ::serde::json::Value::Obj(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_json(f0))]),\n"
                    )),
                    Variant::Tuple(vn, n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_json({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::json::Value::Obj(vec![(\"{vn}\".to_string(), ::serde::json::Value::Arr(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    Variant::Struct(vn, fields) => {
                        let binds: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{0}: __f_{0}", f.name))
                            .collect();
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{0}\".to_string(), ::serde::Serialize::to_json(__f_{0}))",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::json::Value::Obj(vec![(\"{vn}\".to_string(), ::serde::json::Value::Obj(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_json(&self) -> ::serde::json::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    if f.skip {
                        format!("{}: ::std::default::Default::default()", f.name)
                    } else {
                        format!(
                            "{0}: ::serde::Deserialize::from_json(v.get(\"{0}\").ok_or_else(|| \
                             format!(\"missing field `{0}` in {name}\"))?)?",
                            f.name
                        )
                    }
                })
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_json(v)?))")
        }
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_json(&items[{k}])?"))
                .collect();
            format!(
                "match v {{\n\
                 ::serde::json::Value::Arr(items) if items.len() == {n} => Ok({name}({})),\n\
                 other => Err(format!(\"expected {n}-element array for {name}, found {{other:?}}\")),\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                match v {
                    Variant::Unit(vn) => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"))
                    }
                    Variant::Tuple(vn, 1) => tagged_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_json(inner)?)),\n"
                    )),
                    Variant::Tuple(vn, n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_json(&items[{k}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => match inner {{\n\
                             ::serde::json::Value::Arr(items) if items.len() == {n} => Ok({name}::{vn}({})),\n\
                             other => Err(format!(\"expected {n}-element array for {name}::{vn}, found {{other:?}}\")),\n\
                             }},\n",
                            inits.join(", ")
                        ));
                    }
                    Variant::Struct(vn, fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                if f.skip {
                                    format!("{}: ::std::default::Default::default()", f.name)
                                } else {
                                    format!(
                                        "{0}: ::serde::Deserialize::from_json(inner.get(\"{0}\").ok_or_else(|| \
                                         format!(\"missing field `{0}` in {name}::{vn}\"))?)?",
                                        f.name
                                    )
                                }
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn} {{ {} }}),\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::json::Value::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => Err(format!(\"unknown unit variant `{{other}}` of {name}\")),\n\
                 }},\n\
                 ::serde::json::Value::Obj(fields) if fields.len() == 1 => {{\n\
                 let (tag, inner) = &fields[0];\n\
                 let _ = inner;\n\
                 match tag.as_str() {{\n\
                 {tagged_arms}\
                 other => Err(format!(\"unknown variant `{{other}}` of {name}\")),\n\
                 }}\n\
                 }},\n\
                 other => Err(format!(\"bad JSON shape for enum {name}: {{other:?}}\")),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_json(v: &::serde::json::Value) -> Result<Self, String> {{\n{body}\n}}\n}}\n"
    )
}
