//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro over `name in strategy` bindings, range and
//! tuple strategies, `prop::collection::vec`, and the `prop_assert*`
//! macros. Cases are sampled from a deterministic per-test RNG; there
//! is no shrinking — a failing case reports its values via the
//! assertion message instead.

use std::ops::{Range, RangeInclusive};

/// Per-test deterministic random source.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from the test name, so every test gets a stable but
    /// distinct case sequence.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Run configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u128;
                assert!(span > 0, "empty range strategy");
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                (*self.start() as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(i32, i64, isize, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for variable-length vectors.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Fallible assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fallible equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            ));
        }
    }};
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let outcome = (|| -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!("case {case}: {message}");
                    }
                }
            }
        )*
    };
}

/// Declares property tests: each `fn name(x in strategy, ...) { ... }`
/// becomes a `#[test]` running the body over random samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ::std::default::Default::default(); $($rest)* }
    };
}

pub mod prelude {
    //! The glob-import surface: macros, config, and the `prop` module.

    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};

    pub mod prop {
        //! Mirror of the `proptest::prop` namespace.
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -5.0f64..5.0, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_strategy_respects_size(xs in prop::collection::vec(0u64..100, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            for x in &xs {
                prop_assert!(*x < 100, "out of range: {}", x);
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(pair in (0u32..10, 0i64..3)) {
            prop_assert!(pair.0 < 10);
            prop_assert_eq!(pair.0 as i64 + pair.1, pair.1 + pair.0 as i64);
        }
    }
}
