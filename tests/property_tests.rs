//! Cross-crate property tests (proptest) over the invariants called
//! out in DESIGN.md §5.

#![allow(clippy::needless_range_loop)]

use petabricks::benchmarks::binpacking::{generate_input, pack_with, ALGORITHM_NAMES};
use petabricks::benchmarks::BinPacking;
use petabricks::config::{AccuracyBins, DecisionTree, Schema, Value};
use petabricks::linalg::SymmetricBanded;
use petabricks::runtime::{CostModel, ExecCtx, Transform, TransformRunner};
use petabricks::stats::{welch_t_test, Comparator, CompareOutcome, OnlineStats};
use petabricks::tuner::{Candidate, EvalMode, Evaluator, MutatorPool, Population};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Decision trees: whatever levels are added in whatever order,
    /// `select` is a piecewise-constant function whose pieces respect
    /// ascending cutoffs.
    #[test]
    fn decision_tree_select_is_consistent(
        levels in prop::collection::vec((1u64..10_000, 0usize..5), 0..8),
        queries in prop::collection::vec(0u64..20_000, 0..32),
    ) {
        let mut tree = DecisionTree::single(0);
        for (cutoff, choice) in &levels {
            tree.add_level(*cutoff, *choice);
        }
        // Cutoffs strictly ascending after deduplication.
        let cutoffs: Vec<u64> = tree.levels().iter().map(|l| l.cutoff).collect();
        for w in cutoffs.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        for q in queries {
            let selected = tree.select(q);
            // The selected choice is the first level whose cutoff
            // exceeds q, or the top choice.
            let expect = tree
                .levels()
                .iter()
                .find(|l| q < l.cutoff)
                .map(|l| l.choice)
                .unwrap_or(tree.top_choice());
            prop_assert_eq!(selected, expect);
        }
    }

    /// Every mutation sequence leaves a config valid for its schema.
    #[test]
    fn mutations_preserve_validity(seed in 0u64..1_000, steps in 1usize..60) {
        let mut schema = Schema::new("prop");
        schema.add_choice_site("site", 4);
        schema.add_cutoff("cut", 1, 1 << 20);
        schema.add_accuracy_variable("acc", 1, 10_000);
        schema.add_switch("sw", 3);
        schema.add_float_param("f", -1.0, 1.0);
        let pool = MutatorPool::from_schema(&schema);
        let mut config = schema.default_config();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut prev = None;
        for step in 0..steps {
            if let Some(rec) =
                pool.apply_random(&mut config, &schema, 1 << (step % 12), &mut rng, prev.as_ref())
            {
                prev = Some(rec);
            }
            prop_assert!(config.validate(&schema).is_ok());
        }
    }

    /// Welch's t-test is symmetric and its p-value is a probability.
    #[test]
    fn t_test_is_symmetric(
        xs in prop::collection::vec(-100.0f64..100.0, 2..20),
        ys in prop::collection::vec(-100.0f64..100.0, 2..20),
    ) {
        let a: OnlineStats = xs.iter().copied().collect();
        let b: OnlineStats = ys.iter().copied().collect();
        let ab = welch_t_test(&a, &b);
        let ba = welch_t_test(&b, &a);
        prop_assert!((0.0..=1.0).contains(&ab.p_value));
        prop_assert!((ab.p_value - ba.p_value).abs() < 1e-9);
        prop_assert!((ab.t + ba.t).abs() < 1e-9);
    }

    /// Banded Cholesky solves random diagonally-dominant SPD systems.
    #[test]
    fn banded_cholesky_solves(seed in 0u64..500, n in 2usize..20, kd in 1usize..4) {
        let kd = kd.min(n - 1);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut a = SymmetricBanded::zeros(n, kd);
        use rand::Rng;
        for d in 1..=kd {
            for i in 0..n - d {
                a.set(i + d, i, rng.gen_range(-1.0..1.0));
            }
        }
        for i in 0..n {
            a.set(i, i, 2.0 * (kd as f64 + 1.0) + rng.gen_range(0.0..1.0));
        }
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let b = a.matvec(&x_true);
        let x = a.solve(&b).expect("diagonally dominant is SPD");
        for (xi, ti) in x.iter().zip(&x_true) {
            prop_assert!((xi - ti).abs() < 1e-7);
        }
    }

    /// No packing heuristic ever overfills a bin or beats OPT, and the
    /// proven worst-case multipliers hold on generated instances.
    #[test]
    fn binpacking_invariants(seed in 0u64..300, n in 10u64..200) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let input = generate_input(n, &mut rng);
        let t = BinPacking;
        let schema = t.schema();
        let config = schema.default_config();
        for alg in 0..ALGORITHM_NAMES.len() {
            let mut ctx = ExecCtx::new(&schema, &config, n, seed);
            let packing = pack_with(alg, &input.items, 2, usize::MAX, &mut ctx);
            prop_assert!(packing.is_valid(), "{} overfilled", ALGORITHM_NAMES[alg]);
            // Volume bound (each bin holds at most 1.0), with float
            // slack: the generator's bins sum to 1.0 only up to
            // rounding, so `ceil` of the total would over-demand.
            prop_assert!(
                packing.bins() as f64 >= input.items.iter().sum::<f64>() - 1e-9,
                "{} lost volume", ALGORITHM_NAMES[alg]
            );
            prop_assert!(
                packing.bins() as f64 <= 2.0 * input.opt_bins as f64 + 1.0,
                "{} above the NextFit bound", ALGORITHM_NAMES[alg]
            );
        }
    }

    /// Tournament-batched pruning (§5.5.4 on the pool) must select the
    /// same kept set as a brute-force full adaptive sort of every
    /// qualifying candidate, under the virtual cost model.
    ///
    /// Levels are powers of two (2x cost gaps) with ±1% deterministic
    /// trial noise, so every distinct-level comparison is decisive and
    /// equal-level candidates (which share trial seeds, hence
    /// observations) resolve as `Same` — the adaptive comparator is a
    /// consistent total preorder and both procedures must agree
    /// exactly, including on tie-breaks (both are stable).
    #[test]
    fn tournament_prune_matches_brute_force_sort(
        exponents in prop::collection::vec(0u32..6, 2..10),
        bin_mask in 1usize..8,
        k in 1usize..4,
    ) {
        let levels: Vec<i64> = exponents.iter().map(|&e| 1i64 << e).collect();
        let all_targets = [0.01, 0.1, 0.4];
        let bins: Vec<f64> = all_targets
            .iter()
            .enumerate()
            .filter(|(i, _)| bin_mask & (1 << i) != 0)
            .map(|(_, &t)| t)
            .collect();
        let (tournament, brute) = prune_both_ways(&levels, &bins, k);
        prop_assert_eq!(tournament, brute);
    }

    /// The language round-trips numeric headers through the printer.
    #[test]
    fn dsl_accuracy_bins_round_trip(bins in prop::collection::vec(-10.0f64..10.0, 1..6)) {
        let rendered: Vec<String> = bins.iter().map(|b| format!("{b}")).collect();
        let src = format!(
            "transform t accuracy_bins {} from A[n] to B[n] {{ to (B b) from (A a) {{ b[0] = 1; }} }}",
            rendered.join(" ")
        );
        let program = petabricks::lang::parse_program(&src).unwrap();
        let printed = petabricks::lang::pretty::print_program(&program);
        let reparsed = petabricks::lang::parse_program(&printed).unwrap();
        prop_assert_eq!(
            &program.transforms[0].accuracy_bins,
            &reparsed.transforms[0].accuracy_bins
        );
    }
}

/// Cost = `level · n · (1 ± 1%)` with deterministic per-seed noise;
/// accuracy = `level / 64`. Distinct levels differ by at least 2x, so
/// the adaptive comparator always separates them; equal levels share
/// trial seeds and therefore observations.
#[derive(Clone, Copy)]
struct NoisyLevels;

impl Transform for NoisyLevels {
    type Input = f64;
    type Output = f64;
    fn name(&self) -> &str {
        "noisy_levels"
    }
    fn schema(&self) -> Schema {
        let mut s = Schema::new("noisy_levels");
        s.add_accuracy_variable("level", 1, 64);
        s
    }
    fn generate_input(&self, _n: u64, rng: &mut SmallRng) -> f64 {
        use rand::Rng;
        rng.gen_range(0.99..1.01)
    }
    fn execute(&self, noise: &f64, ctx: &mut ExecCtx<'_>) -> f64 {
        let level = ctx.param("level").unwrap() as f64;
        ctx.charge(level * ctx.size() as f64 * noise);
        level / 64.0
    }
    fn accuracy(&self, _i: &f64, o: &f64) -> f64 {
        *o
    }
}

/// Runs the tournament-batched `Population::prune` and a brute-force
/// reference (full stable adaptive insertion sort of every qualifying
/// candidate per bin, take the first K, plus the best-accuracy safety
/// net) on identically-built populations; returns both kept id sets.
fn prune_both_ways(levels: &[i64], bins: &[f64], k: usize) -> (Vec<u64>, Vec<u64>) {
    let runner = TransformRunner::new(NoisyLevels, CostModel::Virtual);
    let schema = runner.schema();
    let n = 8;
    let comparator = Comparator::default();
    let make_pop = || {
        let mut pop = Population::new();
        for (i, &level) in levels.iter().enumerate() {
            let mut config = schema.default_config();
            config
                .set_by_name(schema, "level", Value::Int(level))
                .unwrap();
            pop.add(Candidate::new(i as u64, config));
        }
        pop
    };

    // Tournament-batched prune (the production path).
    let mut pop_t = make_pop();
    let eval_t = Evaluator::new(&runner, EvalMode::Sequential, true);
    pop_t.test_all(&eval_t, n, 3);
    pop_t.prune(
        n,
        &AccuracyBins::new(bins.to_vec()),
        k,
        &eval_t,
        &comparator,
    );
    let kept_t: Vec<u64> = pop_t.candidates().iter().map(|c| c.id).collect();

    // Brute force: fully sort every qualifying candidate adaptively.
    let mut pop_b = make_pop();
    let eval_b = Evaluator::new(&runner, EvalMode::Sequential, true);
    pop_b.test_all(&eval_b, n, 3);
    let mut keep: BTreeSet<usize> = BTreeSet::new();
    for &target in bins {
        let mut qual: Vec<usize> = (0..pop_b.len())
            .filter(|&i| pop_b.candidates()[i].meets_target(n, target))
            .collect();
        // Stable adaptive insertion sort over the whole qualifying set.
        for i in 1..qual.len() {
            let mut j = i;
            while j > 0 {
                let (a, b) = (qual[j - 1], qual[j]);
                if pop_b.compare_time(b, a, n, &eval_b, &comparator) == CompareOutcome::Less {
                    qual.swap(j - 1, j);
                    j -= 1;
                } else {
                    break;
                }
            }
        }
        qual.truncate(k);
        keep.extend(qual);
    }
    if let Some(best) = pop_b.best_accuracy_index(n) {
        keep.insert(best);
    }
    let kept_b: Vec<u64> = keep.iter().map(|&i| pop_b.candidates()[i].id).collect();
    (kept_t, kept_b)
}
