//! Cross-crate property tests (proptest) over the invariants called
//! out in DESIGN.md §5.

#![allow(clippy::needless_range_loop)]

use petabricks::benchmarks::binpacking::{generate_input, pack_with, ALGORITHM_NAMES};
use petabricks::benchmarks::BinPacking;
use petabricks::config::{DecisionTree, Schema};
use petabricks::linalg::SymmetricBanded;
use petabricks::runtime::{ExecCtx, Transform};
use petabricks::stats::{welch_t_test, OnlineStats};
use petabricks::tuner::MutatorPool;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Decision trees: whatever levels are added in whatever order,
    /// `select` is a piecewise-constant function whose pieces respect
    /// ascending cutoffs.
    #[test]
    fn decision_tree_select_is_consistent(
        levels in prop::collection::vec((1u64..10_000, 0usize..5), 0..8),
        queries in prop::collection::vec(0u64..20_000, 0..32),
    ) {
        let mut tree = DecisionTree::single(0);
        for (cutoff, choice) in &levels {
            tree.add_level(*cutoff, *choice);
        }
        // Cutoffs strictly ascending after deduplication.
        let cutoffs: Vec<u64> = tree.levels().iter().map(|l| l.cutoff).collect();
        for w in cutoffs.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        for q in queries {
            let selected = tree.select(q);
            // The selected choice is the first level whose cutoff
            // exceeds q, or the top choice.
            let expect = tree
                .levels()
                .iter()
                .find(|l| q < l.cutoff)
                .map(|l| l.choice)
                .unwrap_or(tree.top_choice());
            prop_assert_eq!(selected, expect);
        }
    }

    /// Every mutation sequence leaves a config valid for its schema.
    #[test]
    fn mutations_preserve_validity(seed in 0u64..1_000, steps in 1usize..60) {
        let mut schema = Schema::new("prop");
        schema.add_choice_site("site", 4);
        schema.add_cutoff("cut", 1, 1 << 20);
        schema.add_accuracy_variable("acc", 1, 10_000);
        schema.add_switch("sw", 3);
        schema.add_float_param("f", -1.0, 1.0);
        let pool = MutatorPool::from_schema(&schema);
        let mut config = schema.default_config();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut prev = None;
        for step in 0..steps {
            if let Some(rec) =
                pool.apply_random(&mut config, &schema, 1 << (step % 12), &mut rng, prev.as_ref())
            {
                prev = Some(rec);
            }
            prop_assert!(config.validate(&schema).is_ok());
        }
    }

    /// Welch's t-test is symmetric and its p-value is a probability.
    #[test]
    fn t_test_is_symmetric(
        xs in prop::collection::vec(-100.0f64..100.0, 2..20),
        ys in prop::collection::vec(-100.0f64..100.0, 2..20),
    ) {
        let a: OnlineStats = xs.iter().copied().collect();
        let b: OnlineStats = ys.iter().copied().collect();
        let ab = welch_t_test(&a, &b);
        let ba = welch_t_test(&b, &a);
        prop_assert!((0.0..=1.0).contains(&ab.p_value));
        prop_assert!((ab.p_value - ba.p_value).abs() < 1e-9);
        prop_assert!((ab.t + ba.t).abs() < 1e-9);
    }

    /// Banded Cholesky solves random diagonally-dominant SPD systems.
    #[test]
    fn banded_cholesky_solves(seed in 0u64..500, n in 2usize..20, kd in 1usize..4) {
        let kd = kd.min(n - 1);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut a = SymmetricBanded::zeros(n, kd);
        use rand::Rng;
        for d in 1..=kd {
            for i in 0..n - d {
                a.set(i + d, i, rng.gen_range(-1.0..1.0));
            }
        }
        for i in 0..n {
            a.set(i, i, 2.0 * (kd as f64 + 1.0) + rng.gen_range(0.0..1.0));
        }
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let b = a.matvec(&x_true);
        let x = a.solve(&b).expect("diagonally dominant is SPD");
        for (xi, ti) in x.iter().zip(&x_true) {
            prop_assert!((xi - ti).abs() < 1e-7);
        }
    }

    /// No packing heuristic ever overfills a bin or beats OPT, and the
    /// proven worst-case multipliers hold on generated instances.
    #[test]
    fn binpacking_invariants(seed in 0u64..300, n in 10u64..200) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let input = generate_input(n, &mut rng);
        let t = BinPacking;
        let schema = t.schema();
        let config = schema.default_config();
        for alg in 0..ALGORITHM_NAMES.len() {
            let mut ctx = ExecCtx::new(&schema, &config, n, seed);
            let packing = pack_with(alg, &input.items, 2, &mut ctx);
            prop_assert!(packing.is_valid(), "{} overfilled", ALGORITHM_NAMES[alg]);
            // Volume bound (each bin holds at most 1.0), with float
            // slack: the generator's bins sum to 1.0 only up to
            // rounding, so `ceil` of the total would over-demand.
            prop_assert!(
                packing.bins() as f64 >= input.items.iter().sum::<f64>() - 1e-9,
                "{} lost volume", ALGORITHM_NAMES[alg]
            );
            prop_assert!(
                packing.bins() as f64 <= 2.0 * input.opt_bins as f64 + 1.0,
                "{} above the NextFit bound", ALGORITHM_NAMES[alg]
            );
        }
    }

    /// The language round-trips numeric headers through the printer.
    #[test]
    fn dsl_accuracy_bins_round_trip(bins in prop::collection::vec(-10.0f64..10.0, 1..6)) {
        let rendered: Vec<String> = bins.iter().map(|b| format!("{b}")).collect();
        let src = format!(
            "transform t accuracy_bins {} from A[n] to B[n] {{ to (B b) from (A a) {{ b[0] = 1; }} }}",
            rendered.join(" ")
        );
        let program = petabricks::lang::parse_program(&src).unwrap();
        let printed = petabricks::lang::pretty::print_program(&program);
        let reparsed = petabricks::lang::parse_program(&printed).unwrap();
        prop_assert_eq!(
            &program.transforms[0].accuracy_bins,
            &reparsed.transforms[0].accuracy_bins
        );
    }
}
