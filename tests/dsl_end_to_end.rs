//! Integration: a program written in the language goes through the
//! whole paper pipeline — parse, check, schema extraction, and
//! autotuning with the same genetic tuner the native benchmarks use.

use petabricks::config::AccuracyBins;
use petabricks::lang::interp::Value;
use petabricks::lang::{check_program, parse_program, DslTransform};
use petabricks::runtime::{CostModel, TransformRunner, TrialRunner};
use petabricks::tuner::{Autotuner, TunerOptions};
use std::collections::HashMap;

/// Iterative refinement: each `for_enough` iteration halves the error,
/// and an `either…or` picks between a cheap and an expensive variant
/// of the refinement step (the expensive one converges twice as fast
/// per unit of accuracy but costs 10x).
const REFINE: &str = r#"
    transform refine
    accuracy_metric refineacc
    from In[n]
    to Err, Work
    {
        to (Err e, Work w) from (In a) {
            e = 1;
            for_enough {
                either {
                    e = e / 2;
                    w = w + 1;
                } or {
                    e = e / 4;
                    w = w + 10;
                }
            }
        }
    }

    transform refineacc
    from Err, In[n]
    to Accuracy
    {
        to (Accuracy acc) from (Err e, In a) {
            acc = 0 - log(e) / log(10);
        }
    }
"#;

fn compile() -> DslTransform {
    let program = parse_program(REFINE).expect("parses");
    check_program(&program).expect("well-formed");
    DslTransform::compile(
        program,
        "refine",
        Box::new(|n, _rng| {
            let mut inputs = HashMap::new();
            inputs.insert("In".to_string(), Value::Arr1(vec![0.0; n.max(1) as usize]));
            inputs
        }),
    )
    .expect("compiles")
}

#[test]
fn dsl_program_exposes_expected_tunables() {
    let dsl = compile();
    let runner = TransformRunner::new(dsl, CostModel::Virtual);
    let schema = runner.schema();
    assert!(schema.tunable("for_enough_0").is_some());
    assert!(schema.tunable("either_0").is_some());
}

#[test]
fn dsl_program_tunes_to_accuracy_bins() {
    let dsl = compile();
    let runner = TransformRunner::new(dsl, CostModel::Virtual);
    // Bins in "digits of error reduction".
    let bins = AccuracyBins::new(vec![1.0, 3.0]);
    let tuned = Autotuner::new(&runner, bins, TunerOptions::fast_preset(4, 0xD51))
        .tune()
        .expect("reachable targets");
    let schema = runner.schema();

    // The tight bin needs more for_enough iterations than the loose
    // one (1 digit needs ~4 halvings; 3 digits ~10).
    let loose = tuned.entry(0).config.int(schema, "for_enough_0").unwrap();
    let tight = tuned.entry(1).config.int(schema, "for_enough_0").unwrap();
    assert!(tight >= loose, "tight={tight} loose={loose}");
    assert!(tuned.entry(0).observed_accuracy >= 1.0 - 1e-9);
    assert!(tuned.entry(1).observed_accuracy >= 3.0 - 1e-9);

    // And fresh executions deliver the promised accuracy.
    let outcome = runner.run_trial(&tuned.entry(1).config, 4, 777);
    assert!(outcome.accuracy >= 3.0 - 1e-9);
}

#[test]
fn pretty_printed_program_is_equivalent() {
    let program = parse_program(REFINE).unwrap();
    let printed = petabricks::lang::pretty::print_program(&program);
    let reparsed = parse_program(&printed).expect("printer output parses");
    assert!(petabricks::lang::pretty::ast_eq(&program, &reparsed));
    // And the reparsed program extracts an identical schema.
    let a = petabricks::lang::extract_schema(&program, "refine");
    let b = petabricks::lang::extract_schema(&reparsed, "refine");
    assert_eq!(a, b);
}

#[test]
fn kmeans_figure3_pipeline() {
    // The Figure-3 program from the paper: parse, check, schema.
    let source = r#"
        transform kmeans
        accuracy_metric kmeansaccuracy
        accuracy_variable k 1 64
        from Points[2, n]
        through Centroids[2, k]
        to Assignments[n]
        {
            to (Centroids c) from (Points p) {
                for (i in 0 .. cols(c)) {
                    let src = floor(rand(0, cols(p)));
                    c[0, i] = p[0, src];
                    c[1, i] = p[1, src];
                }
            }
            to (Centroids c) from (Points p) {
                for (i in 0 .. cols(c)) {
                    let src = i * cols(p) / cols(c);
                    c[0, i] = p[0, src];
                    c[1, i] = p[1, src];
                }
            }
            to (Assignments a) from (Points p, Centroids c) {
                for_enough {
                    for (i in 0 .. len(a)) {
                        a[i] = i % cols(c);
                    }
                }
            }
        }
        transform kmeansaccuracy
        from Assignments[n], Points[2, n]
        to Accuracy
        {
            to (Accuracy acc) from (Assignments a, Points p) {
                acc = 1;
            }
        }
    "#;
    let program = parse_program(source).unwrap();
    check_program(&program).unwrap();
    let schema = petabricks::lang::extract_schema(&program, "kmeans");
    assert!(schema.tunable("k").is_some());
    assert!(schema.tunable("rule_Centroids").is_some());
    assert!(schema.tunable("for_enough_0").is_some());
}
