//! Pins the steady-state allocation behavior of the VM dispatch loop:
//! once frames and tunable-resolution tables are warm, executing a
//! compiled rule body performs **zero heap allocations per loop
//! iteration** — including iterations that read prefixed tunables,
//! which before the resolution cache cost one `format!` each.
//!
//! The harness measures total allocations for runs whose inner loops
//! differ by ~256x in trip count and asserts the totals match (small
//! slack for test-harness noise): any per-iteration allocation in the
//! dispatch loop would show up tens of thousands of times over. The
//! same bound is then re-pinned with `pb_trace` VM chunk profiling
//! enabled — observability must not cost the hot path its guarantee.
//!
//! Pinned at `OptLevel::O3` (the default): the hot loop executes the
//! typed-specialized unchecked forms and hoisted shape reads, and the
//! guarantee must survive them. Profiling runs under a sampling
//! period (`PB_PROFILE_SAMPLE=4`), so the per-(thread, chunk) sample
//! counters are exercised too — steady-state counter bumps are
//! `HashMap::get_mut` on warmed entries, not inserts.
//!
//! This file holds exactly one test so no concurrent test thread
//! pollutes the global allocation counter.

use petabricks::config::Value as ConfigValue;
use petabricks::lang::interp::Value;
use petabricks::lang::{check_program, parse_program, Interpreter};
use petabricks::runtime::ExecCtx;
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates everything to `System`; only adds a counter.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The hot body lives in a *called* sub-transform so every tunable it
/// reads resolves under the `helper.` prefix — the case that used to
/// allocate a `String` per read in the dispatch loop.
const HOT: &str = r#"
    transform hot from In[n] to Out {
        to (Out o) from (In a) { o = helper(a); }
    }

    transform helper accuracy_variable bump 1 1000000 from X[m] to Y {
        to (Y y) from (X x) {
            y = x[0];
            for (i in 0 .. bump) {
                y = y + bump * len(x);
                y = y - i;
            }
        }
    }
"#;

fn run_hot(interp: &Interpreter, schema: &petabricks::config::Schema, iters: i64) -> f64 {
    let mut config = schema.default_config();
    config
        .set_by_name(schema, "helper.bump", ConfigValue::Int(iters))
        .unwrap();
    let inputs: HashMap<String, Value> = [("In".to_string(), Value::Arr1(vec![1.0, 2.0]))].into();
    let mut ctx = ExecCtx::new(schema, &config, 2, 0);
    let out = interp.run("hot", &inputs, &mut ctx).unwrap();
    out["Out"].as_num().unwrap()
}

#[test]
fn dispatch_loop_is_allocation_free_in_steady_state() {
    // Fix the sampling period before anything touches `pb_trace` (the
    // knob is read once per process). 4 means every 4th execution per
    // chunk is profiled — the counter path must stay allocation-free.
    std::env::set_var(petabricks::trace::PROFILE_SAMPLE_ENV, "4");

    // The default pipeline is the full typed-specialization tier; this
    // test pins the allocation contract at that level, not below it.
    assert_eq!(
        petabricks::lang::OptLevel::default(),
        petabricks::lang::OptLevel::O3
    );

    let program = parse_program(HOT).expect("parses");
    check_program(&program).expect("well-formed");
    let interp = Interpreter::new_compiled(program.clone());
    let (compiled, total) = interp.compiled().unwrap().coverage();
    assert_eq!(compiled, total, "the hot path must run on the VM");
    let schema = petabricks::lang::extract_schema(&program, "hot");

    const RUNS: u64 = 8;
    const SHORT: i64 = 16;
    const LONG: i64 = 4096;

    // Warm the thread's frame reservoir and resolution caches at both
    // trip counts.
    for _ in 0..2 {
        run_hot(&interp, &schema, SHORT);
        run_hot(&interp, &schema, LONG);
    }

    let a0 = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..RUNS {
        run_hot(&interp, &schema, SHORT);
    }
    let short_allocs = ALLOCS.load(Ordering::Relaxed) - a0;

    let b0 = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..RUNS {
        run_hot(&interp, &schema, LONG);
    }
    let long_allocs = ALLOCS.load(Ordering::Relaxed) - b0;

    // ~256x the loop iterations (each reading the prefixed `bump`
    // tunable twice), same allocation count: the dispatch loop and its
    // tunable reads are allocation-free. The slack absorbs incidental
    // harness noise; a single per-iteration allocation would add
    // RUNS * (LONG - SHORT) ≈ 32k.
    assert!(
        long_allocs <= short_allocs + 64,
        "dispatch loop allocates per iteration: {short_allocs} allocs for \
         {RUNS}x{SHORT} iterations vs {long_allocs} for {RUNS}x{LONG}"
    );

    // With VM chunk profiling enabled the contract must hold
    // unchanged: the per-chunk counters live on the stack during the
    // dispatch loop and merge into an already-populated table after
    // it returns, so steady state stays allocation-free. Warm first —
    // the initial `record_chunk` per (thread, chunk) label inserts.
    petabricks::trace::set_vm_profiling(true);
    for _ in 0..2 {
        run_hot(&interp, &schema, SHORT);
        run_hot(&interp, &schema, LONG);
    }

    let c0 = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..RUNS {
        run_hot(&interp, &schema, SHORT);
    }
    let short_profiled = ALLOCS.load(Ordering::Relaxed) - c0;

    let d0 = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..RUNS {
        run_hot(&interp, &schema, LONG);
    }
    let long_profiled = ALLOCS.load(Ordering::Relaxed) - d0;

    petabricks::trace::set_vm_profiling(false);
    assert!(
        long_profiled <= short_profiled + 64,
        "profiled dispatch loop allocates per iteration: {short_profiled} \
         allocs for {RUNS}x{SHORT} iterations vs {long_profiled} for \
         {RUNS}x{LONG}"
    );

    // And the profile was really collected: both transforms' chunks
    // appear with execution counts.
    let chunks = petabricks::trace::chunk_snapshot();
    assert!(
        chunks.iter().any(|c| c.label.starts_with("helper::")),
        "expected a helper chunk in the profile: {:?}",
        chunks.iter().map(|c| &c.label).collect::<Vec<_>>()
    );
    assert!(
        chunks
            .iter()
            .all(|c| c.executions > 0 && c.instructions() > 0),
        "profiled chunks must carry counts"
    );

    // And the result is still the interpreter's, bit for bit.
    let tree = Interpreter::new(program);
    let inputs: HashMap<String, Value> = [("In".to_string(), Value::Arr1(vec![1.0, 2.0]))].into();
    let mut config = schema.default_config();
    config
        .set_by_name(&schema, "helper.bump", ConfigValue::Int(SHORT))
        .unwrap();
    let mut ctx = ExecCtx::new(&schema, &config, 2, 0);
    let expect = tree.run("hot", &inputs, &mut ctx).unwrap();
    assert_eq!(
        expect["Out"].as_num().unwrap(),
        run_hot(&interp, &schema, SHORT)
    );
}
