//! Parallel candidate evaluation must be **bit-identical** to forced
//! sequential evaluation.
//!
//! Trial seeds are a deterministic function of `(input size, trial
//! index)`, trials are pure under the virtual cost model, and every
//! tuner decision happens in a fixed merge order — so switching the
//! evaluator between the work-stealing pool and a sequential loop may
//! change only the wall-clock schedule, never a configuration, a
//! statistic, or a prune decision. These tests pin that guarantee
//! across multiple seeds and two real tuning workloads.

use petabricks::benchmarks::binpacking::ratio_to_accuracy;
use petabricks::benchmarks::{BinPacking, Clustering};
use petabricks::config::AccuracyBins;
use petabricks::runtime::pool::{Pool, THREADS_ENV};
use petabricks::runtime::{CostModel, Transform, TransformRunner};
use petabricks::tuner::{Autotuner, TunerOptions, TuningOutcome};

/// Forces a multi-threaded pool even on single-core CI runners, so the
/// parallel path genuinely executes trials concurrently.
///
/// Guarded by a [`Once`] because libtest runs the `#[test]` fns on
/// separate threads: the variable is written exactly once, and every
/// test synchronizes on that write before its first pool use (the
/// pool's own `OnceLock` then reads it exactly once).
fn force_parallel_pool() {
    static FORCE: std::sync::Once = std::sync::Once::new();
    // SAFETY: the Once serializes the single write; all reads happen
    // through Pool::global()'s one-time init, after some call to this
    // function (and therefore the write) has completed.
    FORCE.call_once(|| unsafe { std::env::set_var(THREADS_ENV, "4") });
}

fn tune<T>(transform: T, bins: Vec<f64>, max_size: u64, seed: u64, parallel: bool) -> TuningOutcome
where
    T: Transform + Send + Sync,
{
    let runner = TransformRunner::new(transform, CostModel::Virtual);
    let mut options = TunerOptions::fast_preset(max_size, seed);
    options.parallel_trials = parallel;
    Autotuner::new(&runner, AccuracyBins::new(bins), options)
        .tune_outcome()
        .unwrap_or_else(|e| panic!("tuning failed: {e}"))
}

fn assert_bit_identical(seq: &TuningOutcome, par: &TuningOutcome) {
    // The tuned frontier: identical configurations and identical
    // observed statistics (f64-exact, no tolerance).
    assert_eq!(seq.program, par.program);
    // Every counter the run accumulated: same trials executed, same
    // children created/accepted, same prune decisions, same cache
    // behaviour.
    assert_eq!(seq.stats, par.stats);
    // And the surviving population is the same size.
    assert_eq!(seq.final_population, par.final_population);
}

#[test]
fn clustering_parallel_matches_sequential_across_seeds() {
    force_parallel_pool();
    for seed in [11u64, 0xE2E] {
        let seq = tune(Clustering, vec![0.05, 0.2], 64, seed, false);
        let par = tune(Clustering, vec![0.05, 0.2], 64, seed, true);
        assert_bit_identical(&seq, &par);
    }
}

#[test]
fn binpacking_parallel_matches_sequential_across_seeds() {
    force_parallel_pool();
    for seed in [7u64, 42] {
        let bins = vec![ratio_to_accuracy(1.5), ratio_to_accuracy(1.1)];
        let seq = tune(BinPacking, bins.clone(), 256, seed, false);
        let par = tune(BinPacking, bins, 256, seed, true);
        assert_bit_identical(&seq, &par);
    }
}

/// Arena comparisons consume no randomness at execution time and
/// merge comparator draws in plan order, so their rounds, draw counts,
/// batch shapes, memo traffic, and decisions must be bit-identical
/// between the forced-sequential evaluator and the 4-thread pool —
/// with pair-verdict memoization and the k-way selection layout
/// enabled (they always are; there is no other code path).
#[test]
fn pruning_is_bit_identical_and_batched() {
    force_parallel_pool();
    // Bin packing's seed-dependent trial noise keeps comparisons
    // ambiguous, so pruning genuinely draws extra trials here
    // (clustering's comparisons all decide from cached statistics).
    for seed in [5u64, 0xBEE] {
        let bins = vec![ratio_to_accuracy(1.5), ratio_to_accuracy(1.1)];
        let seq = tune(BinPacking, bins.clone(), 256, seed, false);
        let par = tune(BinPacking, bins, 256, seed, true);
        assert_bit_identical(&seq, &par);
        // `assert_bit_identical` already compares the full TunerStats;
        // these spell out that the pruning path was really exercised
        // through the batch machinery, not a degenerate no-op.
        assert!(
            seq.stats.prune_rounds > 0,
            "pruning must have run batched rounds: {:?}",
            seq.stats
        );
        assert!(
            seq.stats.prune_draws > 0,
            "pruning must have drawn comparator trials: {:?}",
            seq.stats
        );
        assert_eq!(seq.stats.prune_rounds, par.stats.prune_rounds);
        assert_eq!(seq.stats.prune_draws, par.stats.prune_draws);
        assert_eq!(seq.stats.prune_max_batch, par.stats.prune_max_batch);
    }
}

/// The child-vs-parent merge phase and the pair-verdict memo run
/// through the same arena machinery and must be just as bit-identical
/// — and really exercised: merge draws batch wider than one, and the
/// pruning re-sorts replay memoized verdicts.
#[test]
fn merging_and_pair_memo_are_bit_identical_and_batched() {
    force_parallel_pool();
    // Seeds chosen so the run's pruning re-sorts really replay
    // memoized verdicts under the forced 4-thread pool (the virtual
    // cost model sees the thread budget, so the trajectory — and with
    // it the memo traffic — is a deterministic function of the seed
    // and that budget).
    for seed in [5u64, 42] {
        let bins = vec![ratio_to_accuracy(1.5), ratio_to_accuracy(1.1)];
        let seq = tune(BinPacking, bins.clone(), 256, seed, false);
        let par = tune(BinPacking, bins, 256, seed, true);
        assert_bit_identical(&seq, &par);
        assert!(
            seq.stats.merge_rounds > 0,
            "child-vs-parent merges must have run batched rounds: {:?}",
            seq.stats
        );
        assert!(
            seq.stats.merge_max_batch > 1,
            "disjoint merge pairs must batch their draws: {:?}",
            seq.stats
        );
        assert!(
            seq.stats.pair_memo_hits > 0,
            "re-sorts must replay memoized pair verdicts: {:?}",
            seq.stats
        );
        assert_eq!(seq.stats.merge_rounds, par.stats.merge_rounds);
        assert_eq!(seq.stats.merge_draws, par.stats.merge_draws);
        assert_eq!(seq.stats.merge_max_batch, par.stats.merge_max_batch);
        assert_eq!(seq.stats.pair_memo_queries, par.stats.pair_memo_queries);
        assert_eq!(seq.stats.pair_memo_hits, par.stats.pair_memo_hits);
    }
}

/// Sharding must be pure scheduling (the sharded-evaluation
/// contract): splitting the pool's injector into 1, 2, or 4
/// shard-local injectors — with locality-preferring stealing and
/// contiguous per-shard sub-batch routing — may move trials between
/// worker threads but must never change a program, a counter (fault
/// counters included; `TunerStats` equality is total), or a surviving
/// candidate. The sweep runs on the process-wide pool via
/// `Pool::set_shards`, the same knob `PB_POOL_SHARDS` initializes; CI
/// additionally runs this whole suite under `PB_POOL_SHARDS=2` to
/// exercise the env path.
#[test]
fn sharded_tuning_is_bit_identical_across_shard_counts() {
    force_parallel_pool();
    let pool = Pool::global();
    let initial_shards = pool.shards();
    let bins = vec![ratio_to_accuracy(1.5), ratio_to_accuracy(1.1)];
    for seed in [7u64, 0x5AD] {
        let seq = tune(BinPacking, bins.clone(), 256, seed, false);
        for shards in [1usize, 2, 4] {
            assert_eq!(
                pool.set_shards(shards),
                shards.min(pool.threads()),
                "the forced 4-thread pool must accept the sweep's shard counts"
            );
            let par = tune(BinPacking, bins.clone(), 256, seed, true);
            assert_bit_identical(&seq, &par);
        }
    }
    // Clustering exercises the kernel-parallel path (nested batches
    // under trial tasks must stay inline at every shard count).
    for shards in [1usize, 2, 4] {
        pool.set_shards(shards);
        let seq = tune(Clustering, vec![0.05, 0.2], 64, 11, false);
        let par = tune(Clustering, vec![0.05, 0.2], 64, 11, true);
        assert_bit_identical(&seq, &par);
    }
    pool.set_shards(initial_shards);
}

/// Tracing must be pure observation (the `pb_trace` contract): with
/// recording enabled, every tuner decision, every statistic, and
/// every counter must be bitwise what it is with tracing disabled —
/// in both evaluator modes. Only the event log may differ.
#[test]
fn tracing_does_not_perturb_tuner_decisions() {
    use petabricks::trace::EventKind;
    force_parallel_pool();
    let bins = vec![ratio_to_accuracy(1.5), ratio_to_accuracy(1.1)];
    let seed = 0x17ACE;
    let off_seq = tune(BinPacking, bins.clone(), 128, seed, false);
    let off_par = tune(BinPacking, bins.clone(), 128, seed, true);
    assert_bit_identical(&off_seq, &off_par);

    petabricks::trace::enable();
    let on_seq = tune(BinPacking, bins.clone(), 128, seed, false);
    let on_par = tune(BinPacking, bins, 128, seed, true);
    let trace = petabricks::trace::collect();
    petabricks::trace::disable();

    assert_bit_identical(&off_seq, &on_seq);
    assert_bit_identical(&off_seq, &on_par);
    // The traced runs really recorded the tuner hierarchy (one
    // tuning-run span each) — tracing was on, not silently off.
    let runs = trace
        .events
        .iter()
        .filter(|e| e.kind == EventKind::TuningRun)
        .count();
    assert!(
        runs >= 2,
        "expected >= 2 tuning_run spans, got {runs} of {} events",
        trace.events.len()
    );
    assert!(
        trace.events.iter().any(|e| e.kind == EventKind::Trial),
        "traced runs must record trial spans"
    );
}

#[test]
fn memoization_does_not_change_results_only_work() {
    force_parallel_pool();
    let runner = TransformRunner::new(Clustering, CostModel::Virtual);
    let bins = AccuracyBins::new(vec![0.05, 0.2]);
    let mut memo_on = TunerOptions::fast_preset(64, 3);
    memo_on.memoize_trials = true;
    let mut memo_off = memo_on;
    memo_off.memoize_trials = false;
    let with_cache = Autotuner::new(&runner, bins.clone(), memo_on)
        .tune_outcome()
        .unwrap();
    let without_cache = Autotuner::new(&runner, bins, memo_off)
        .tune_outcome()
        .unwrap();
    assert_eq!(with_cache.program, without_cache.program);
    assert!(
        with_cache.stats.cache_hits > 0,
        "a real tuning run re-requests trials (duplicate candidates, \
         comparator redraws): {:?}",
        with_cache.stats
    );
    assert!(
        with_cache.stats.trials < without_cache.stats.trials,
        "memoization must reduce executed trials: {} vs {}",
        with_cache.stats.trials,
        without_cache.stats.trials
    );
}
