//! Static-analysis suite: the bytecode verifier and the abstract
//! interpreter.
//!
//! Three layers:
//!
//! 1. **Fuzz acceptance** — every program the differential suite's
//!    random-body generator produces must verify clean at `O0` and
//!    through the verified `O1`–`O3` pass pipelines (pass-by-pass
//!    checking on), with the charge signature preserved end to end.
//! 2. **Hand-broken regression corpus** — chunks broken one invariant
//!    at a time must be rejected with exactly the right
//!    [`ViolationKind`], and the pass pipeline must attribute a bad
//!    *input* chunk to `lowering`.
//! 3. **`ChunkFacts` pins** — the shipped kmeans and binpacking
//!    programs infer the expected per-slot kinds (arrays with rank,
//!    scalar int/float, constant-ness), at `O0` and after `O2`.

mod common;

use common::gen_straight_line_program;
use petabricks::lang::compile::{Chunk, Instr, ShapeKind};
use petabricks::lang::{
    analyze_chunk, charge_signature, check_program, compile_program, entry_slots,
    optimize_verified, parse_program, verify_chunk, verify_specialized, verify_tunables, AbsValue,
    OptLevel, ScalarKind, ViolationKind,
};
use proptest::prelude::*;

fn example(name: &str) -> String {
    let path = format!("{}/examples/dsl/{name}.pb", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

// ---- fuzz acceptance ---------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated program's chunks verify clean at `O0`, and both
    /// optimizing levels run the full pipeline with pass-by-pass
    /// verification on — so a pass that ever emits a malformed chunk
    /// (or moves a charge across control flow) fails here with the
    /// pass named, not in the differential suite with a diverging
    /// output.
    #[test]
    fn random_bodies_verify_clean_at_every_level(
        seed in 0u64..10_000,
        n_stmts in 1usize..12,
    ) {
        let src = gen_straight_line_program(seed, n_stmts);
        let program = parse_program(&src).unwrap();
        check_program(&program).unwrap();
        let compiled = compile_program(&program);
        let t = compiled.transform("t").unwrap();
        for rule in &t.rules {
            let chunk = rule.as_ref().expect("generated bodies always compile");
            verify_chunk(chunk).unwrap_or_else(|v| panic!("O0 chunk invalid: {v}\n{src}"));
            let sig = charge_signature(&chunk.code);
            for level in [OptLevel::O1, OptLevel::O2, OptLevel::O3] {
                let opt = optimize_verified(chunk, level, true)
                    .unwrap_or_else(|v| panic!("{v}\n{src}"));
                verify_chunk(&opt).unwrap_or_else(|v| panic!("{level:?} chunk invalid: {v}"));
                let opt_sig = charge_signature(&opt.code);
                prop_assert!(
                    opt_sig == sig,
                    "charge signature not preserved at {level:?}: {sig:?} -> {opt_sig:?}"
                );
            }
        }
    }
}

#[test]
fn shipped_examples_verify_clean_with_tunables() {
    for name in ["refine", "kmeans", "binpacking"] {
        let src = example(name);
        let program = parse_program(&src).unwrap();
        check_program(&program).unwrap();
        let compiled = compile_program(&program);
        for t in &program.transforms {
            let schema = petabricks::lang::extract_schema(&program, &t.name);
            let ct = compiled.transform(&t.name).unwrap();
            for rule in &ct.rules {
                let chunk = rule.as_ref().expect("shipped rules all compile");
                verify_chunk(chunk).unwrap();
                let opt = optimize_verified(chunk, OptLevel::O2, true).unwrap();
                verify_tunables(&opt, &schema, "").unwrap();
            }
        }
    }
}

// ---- hand-broken regression corpus -------------------------------------

fn chunk(code: Vec<Instr>, n_regs: u16, n_slots: u16, names: Vec<&str>) -> Chunk {
    Chunk {
        label: "broken::r0".into(),
        code,
        names: names.into_iter().map(String::from).collect(),
        n_regs,
        n_slots,
        input_slots: vec![],
        output_slots: vec![],
        opt: OptLevel::O0,
    }
}

#[test]
fn corpus_bad_jump_target() {
    let c = chunk(
        vec![Instr::Const { dst: 0, val: 0.0 }, Instr::Jump { target: 9 }],
        1,
        0,
        vec![],
    );
    let v = verify_chunk(&c).unwrap_err();
    assert_eq!(v.kind, ViolationKind::BadJumpTarget);
    assert_eq!(v.at, 1);
}

#[test]
fn corpus_bad_fused_jump_target() {
    // The fused compare-and-branch and add-and-jump forms carry their
    // own targets; both must be range-checked too.
    let cmp = chunk(
        vec![
            Instr::Const { dst: 0, val: 0.0 },
            Instr::JumpCmpImm {
                op: petabricks::lang::ast::BinOp::Lt,
                a: 0,
                imm: 1.0,
                jump_if: true,
                target: 77,
            },
        ],
        1,
        0,
        vec![],
    );
    assert_eq!(
        verify_chunk(&cmp).unwrap_err().kind,
        ViolationKind::BadJumpTarget
    );
    let aij = chunk(
        vec![
            Instr::Const { dst: 0, val: 0.0 },
            Instr::AddImmJump {
                dst: 0,
                imm: 1.0,
                target: 77,
            },
        ],
        1,
        0,
        vec![],
    );
    assert_eq!(
        verify_chunk(&aij).unwrap_err().kind,
        ViolationKind::BadJumpTarget
    );
}

#[test]
fn corpus_use_before_def_straight_line() {
    let c = chunk(vec![Instr::StoreSlotNum { slot: 0, src: 3 }], 4, 1, vec![]);
    let v = verify_chunk(&c).unwrap_err();
    assert_eq!(v.kind, ViolationKind::UseBeforeDef);
    assert_eq!(v.at, 0);
}

#[test]
fn corpus_use_before_def_one_sided_branch() {
    // r1 is defined only when the branch is taken; reading it at the
    // join must be rejected (must-defined, not may-defined).
    let c = chunk(
        vec![
            Instr::Const { dst: 0, val: 1.0 },
            Instr::JumpIfZero { cond: 0, target: 3 },
            Instr::Const { dst: 1, val: 2.0 },
            Instr::Move { dst: 2, src: 1 },
            Instr::Return,
        ],
        3,
        0,
        vec![],
    );
    let v = verify_chunk(&c).unwrap_err();
    assert_eq!(v.kind, ViolationKind::UseBeforeDef);
    assert_eq!(v.at, 3);
}

#[test]
fn corpus_slot_out_of_bounds() {
    let c = chunk(
        vec![
            Instr::Const { dst: 0, val: 0.0 },
            Instr::StoreSlotNum { slot: 2, src: 0 },
        ],
        1,
        2,
        vec![],
    );
    let v = verify_chunk(&c).unwrap_err();
    assert_eq!(v.kind, ViolationKind::SlotOutOfBounds);
    assert_eq!(v.at, 1);
}

#[test]
fn corpus_reg_out_of_bounds() {
    let c = chunk(vec![Instr::Const { dst: 4, val: 0.0 }], 2, 0, vec![]);
    assert_eq!(
        verify_chunk(&c).unwrap_err().kind,
        ViolationKind::RegOutOfBounds
    );
}

#[test]
fn corpus_name_out_of_bounds() {
    let c = chunk(
        vec![Instr::LoadParam { dst: 0, name: 1 }],
        1,
        0,
        vec!["only_one"],
    );
    assert_eq!(
        verify_chunk(&c).unwrap_err().kind,
        ViolationKind::NameOutOfBounds
    );
}

#[test]
fn corpus_unguarded_switch() {
    // A Switch not fed by its clamping Choice can dispatch out of
    // range; the verifier requires the guard.
    let c = chunk(
        vec![
            Instr::Const { dst: 0, val: 7.0 },
            Instr::Switch {
                src: 0,
                targets: vec![2, 2],
            },
            Instr::Return,
        ],
        1,
        0,
        vec![],
    );
    assert_eq!(
        verify_chunk(&c).unwrap_err().kind,
        ViolationKind::UnguardedSwitch
    );
}

#[test]
fn corpus_bad_charge() {
    for amount in [-1.0, 0.0, f64::NAN, f64::INFINITY] {
        let c = chunk(vec![Instr::Charge { amount }], 0, 0, vec![]);
        assert_eq!(
            verify_chunk(&c).unwrap_err().kind,
            ViolationKind::BadCharge,
            "amount {amount}"
        );
    }
}

#[test]
fn corpus_bad_operator() {
    let c = chunk(
        vec![
            Instr::Const { dst: 0, val: 1.0 },
            Instr::BinRI {
                op: petabricks::lang::ast::BinOp::Or,
                dst: 1,
                a: 0,
                imm: 0.0,
            },
        ],
        2,
        0,
        vec![],
    );
    assert_eq!(
        verify_chunk(&c).unwrap_err().kind,
        ViolationKind::BadOperator
    );
}

#[test]
fn corpus_specialized_form_below_o3() {
    // The `*U` / hoisted forms are an O3-only contract: a chunk
    // stamped below O3 carrying one was not produced by the gated
    // specializer pipeline.
    let c = chunk(
        vec![
            Instr::Const { dst: 0, val: 0.0 },
            Instr::LoadIdx1U {
                dst: 1,
                slot: 0,
                idx: 0,
            },
            Instr::Return,
        ],
        2,
        1,
        vec![],
    );
    let v = verify_chunk(&c).unwrap_err();
    assert_eq!(v.kind, ViolationKind::BadSpecializedAccess);
    assert_eq!(v.at, 1);
}

#[test]
fn corpus_unchecked_target_not_proven() {
    // At O3 the structural check passes, but the facts half must
    // reject an unchecked access whose slot the facts cannot prove is
    // a rank-1 array (no entry information -> Bottom).
    let mut c = chunk(
        vec![
            Instr::Const { dst: 0, val: 0.0 },
            Instr::LoadIdx1U {
                dst: 1,
                slot: 0,
                idx: 0,
            },
            Instr::Return,
        ],
        2,
        1,
        vec![],
    );
    c.opt = OptLevel::O3;
    verify_chunk(&c).expect("structurally fine at O3");
    let facts = analyze_chunk(&c, &[]);
    let v = verify_specialized(&c.code, &facts).unwrap_err();
    assert_eq!(v.kind, ViolationKind::BadSpecializedAccess);
    assert_eq!(v.at, 1);
}

#[test]
fn corpus_hoist_past_a_charge() {
    // A Charge sitting between the zero-trip guard and the hoisted
    // Shape run means cost moved along with the reads.
    let mut c = chunk(
        vec![
            Instr::Const { dst: 0, val: 0.0 },
            Instr::JumpIfGe {
                a: 0,
                b: 0,
                target: 5,
            },
            Instr::Charge { amount: 1.0 },
            Instr::ShapeHoisted {
                kind: ShapeKind::Len,
                dst: 1,
                slot: 0,
            },
            Instr::Return,
            Instr::Return,
        ],
        2,
        1,
        vec![],
    );
    c.opt = OptLevel::O3;
    let v = verify_chunk(&c).unwrap_err();
    assert_eq!(v.kind, ViolationKind::ChargeMoved);
    assert_eq!(v.at, 3);
}

#[test]
fn corpus_malformed_zero_trip_guard() {
    // A hoisted run whose predecessor is not a forward conditional
    // branch past it could run when the loop body never would.
    let mut c = chunk(
        vec![
            Instr::Const { dst: 0, val: 0.0 },
            Instr::ShapeHoisted {
                kind: ShapeKind::Len,
                dst: 1,
                slot: 0,
            },
            Instr::Return,
        ],
        2,
        1,
        vec![],
    );
    c.opt = OptLevel::O3;
    let v = verify_chunk(&c).unwrap_err();
    assert_eq!(v.kind, ViolationKind::BadHoistGuard);
    assert_eq!(v.at, 1);
}

#[test]
fn corpus_bad_input_chunk_attributed_to_lowering() {
    let c = chunk(vec![Instr::Jump { target: 9 }], 0, 0, vec![]);
    let err = optimize_verified(&c, OptLevel::O2, true).unwrap_err();
    assert_eq!(err.pass, "lowering");
    assert_eq!(err.violation.kind, ViolationKind::BadJumpTarget);
}

#[test]
fn corpus_unknown_and_mismatched_tunables() {
    // Verify the refine chunk against the metric transform's schema
    // (which has no tunables): every tunable reference is unknown.
    let src = example("refine");
    let program = parse_program(&src).unwrap();
    let compiled = compile_program(&program);
    let refine = compiled.chunk("refine", 0).unwrap();
    let empty = petabricks::lang::extract_schema(&program, "refineacc");
    assert_eq!(
        verify_tunables(refine, &empty, "").unwrap_err().kind,
        ViolationKind::UnknownTunable
    );

    // And a Choice whose branch count disagrees with the schema's
    // choice site is a mismatch.
    let schema = petabricks::lang::extract_schema(&program, "refine");
    let mut tampered = refine.clone();
    for instr in &mut tampered.code {
        if let Instr::Choice { branches, .. } = instr {
            *branches = 3;
        }
    }
    assert_eq!(
        verify_tunables(&tampered, &schema, "").unwrap_err().kind,
        ViolationKind::TunableMismatch
    );
}

// ---- ChunkFacts pins ---------------------------------------------------

/// The facts for `transform`'s rule `rule_idx` of `src`, computed at
/// `level` through the public compile → optimize path.
fn facts_at(
    src: &str,
    transform: &str,
    rule_idx: usize,
    level: OptLevel,
) -> petabricks::lang::ChunkFacts {
    let program = parse_program(src).unwrap();
    let compiled = compile_program(&program).optimized(level);
    compiled.facts(transform, rule_idx).unwrap().clone()
}

fn slot_of(
    src: &str,
    transform: &str,
    rule_idx: usize,
    level: OptLevel,
    binding: Binding,
) -> usize {
    let program = parse_program(src).unwrap();
    let compiled = compile_program(&program).optimized(level);
    let chunk = compiled.chunk(transform, rule_idx).unwrap();
    match binding {
        Binding::Input(i) => chunk.input_slots[i] as usize,
        Binding::Output(i) => chunk.output_slots[i] as usize,
    }
}

enum Binding {
    Input(usize),
    Output(usize),
}

#[test]
fn kmeans_facts_pin_expected_kinds() {
    let src = example("kmeans");
    for level in [OptLevel::O0, OptLevel::O2] {
        // Rule 2: to (Assignments a) from (Points p, Centroids c).
        let facts = facts_at(&src, "kmeans", 2, level);
        let points = slot_of(&src, "kmeans", 2, level, Binding::Input(0));
        let centroids = slot_of(&src, "kmeans", 2, level, Binding::Input(1));
        let assignments = slot_of(&src, "kmeans", 2, level, Binding::Output(0));
        assert_eq!(
            facts.slots[points],
            AbsValue::Array { rank: 2 },
            "{level:?}"
        );
        assert_eq!(
            facts.slots[centroids],
            AbsValue::Array { rank: 2 },
            "{level:?}"
        );
        assert_eq!(
            facts.slots[assignments],
            AbsValue::Array { rank: 1 },
            "{level:?}"
        );
        // Registers only ever hold scalars; the abstract domain must
        // agree (no Array/Any leaks into the register file).
        for (i, r) in facts.regs.iter().enumerate() {
            assert!(
                matches!(r, AbsValue::Bottom | AbsValue::Scalar { .. }),
                "{level:?}: r{i} inferred {r}"
            );
        }

        // Rule 0 (random restarts) draws via rand: its `src` index
        // register is floor()-ed, so it must infer int, not float.
        let facts0 = facts_at(&src, "kmeans", 0, level);
        let p0 = slot_of(&src, "kmeans", 0, level, Binding::Input(0));
        let c0 = slot_of(&src, "kmeans", 0, level, Binding::Output(0));
        assert_eq!(facts0.slots[p0], AbsValue::Array { rank: 2 }, "{level:?}");
        assert_eq!(facts0.slots[c0], AbsValue::Array { rank: 2 }, "{level:?}");
        let src_slot = facts0
            .slots
            .iter()
            .filter(|v| {
                matches!(
                    v,
                    AbsValue::Scalar {
                        kind: ScalarKind::Int,
                        ..
                    }
                )
            })
            .count();
        assert!(
            src_slot >= 1,
            "{level:?}: expected an int-kinded local slot (`src`)"
        );
    }
}

#[test]
fn binpacking_facts_pin_expected_kinds() {
    let src = example("binpacking");
    for level in [OptLevel::O0, OptLevel::O2] {
        let facts = facts_at(&src, "binpack", 0, level);
        let sizes = slot_of(&src, "binpack", 0, level, Binding::Input(0));
        let bins = slot_of(&src, "binpack", 0, level, Binding::Output(0));
        let used = slot_of(&src, "binpack", 0, level, Binding::Output(1));
        assert_eq!(facts.slots[sizes], AbsValue::Array { rank: 1 }, "{level:?}");
        assert_eq!(facts.slots[bins], AbsValue::Array { rank: 1 }, "{level:?}");
        // `Used` is declared scalar (float at entry) and only ever
        // assigned integral values; the join across entry and stores
        // keeps it a non-constant scalar, never an array.
        assert!(
            matches!(facts.slots[used], AbsValue::Scalar { cst: None, .. }),
            "{level:?}: Used inferred {}",
            facts.slots[used]
        );

        // The metric rule: Accuracy output is a scalar.
        let mfacts = facts_at(&src, "binpackacc", 0, level);
        let acc = slot_of(&src, "binpackacc", 0, level, Binding::Output(0));
        assert!(
            matches!(mfacts.slots[acc], AbsValue::Scalar { .. }),
            "{level:?}: Accuracy inferred {}",
            mfacts.slots[acc]
        );
    }
}

#[test]
fn facts_refresh_after_optimization() {
    // `optimized()` must re-infer over the optimized code: the facts'
    // register file matches the *renumbered* register count, not the
    // lowering-time one.
    let src = example("binpacking");
    let program = parse_program(&src).unwrap();
    let compiled = compile_program(&program).optimized(OptLevel::O2);
    let chunk = compiled.chunk("binpack", 0).unwrap();
    let facts = compiled.facts("binpack", 0).unwrap();
    assert_eq!(facts.regs.len(), chunk.n_regs as usize);
    assert_eq!(facts.slots.len(), chunk.n_slots as usize);

    // And recomputing from the stored entry state is reproducible.
    let again = analyze_chunk(chunk, &facts.entry_slots);
    assert_eq!(&again, facts);
}

#[test]
fn entry_slots_come_from_declarations() {
    let src = example("kmeans");
    let program = parse_program(&src).unwrap();
    let t = program.transform("kmeans").unwrap();
    let compiled = compile_program(&program);
    let chunk = compiled.chunk("kmeans", 2).unwrap();
    let entry = entry_slots(t, &t.rules[2], chunk);
    assert_eq!(
        entry[chunk.input_slots[0] as usize],
        AbsValue::Array { rank: 2 }
    );
    assert_eq!(
        entry[chunk.output_slots[0] as usize],
        AbsValue::Array { rank: 1 }
    );
}
