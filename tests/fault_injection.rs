//! Chaos and noise contracts for the fault-tolerant tuning pipeline.
//!
//! Two guarantees are pinned here, end to end through the autotuner:
//!
//! 1. **Chaos heals bit-identically.** With `pb_faults` injecting
//!    panics and non-finite costs at a seeded fraction of trial
//!    coordinates — each faulting once, within the evaluator's retry
//!    budget — a virtual-cost tuning run's *decisions* (program,
//!    decision-image statistics, final population) are bit-identical
//!    to the fault-free run, sequentially and on a forced 4-thread
//!    pool. Faults that exhaust retries quarantine instead of
//!    aborting, still deterministically.
//! 2. **Robust statistics survive noise.** Under seeded wall-clock
//!    jitter and outlier spikes, the winsorized comparator still
//!    converges to the known-best algorithm where the plain mean
//!    comparator is flipped by the outliers — and noisy runners are
//!    re-sampled, never memoized.

use petabricks::benchmarks::Clustering;
use petabricks::config::{AccuracyBins, Schema};
use petabricks::faults::{FaultConfig, FaultyRunner};
use petabricks::runtime::pool::THREADS_ENV;
use petabricks::runtime::{CostModel, ExecCtx, Transform, TransformRunner, TrialRunner};
use petabricks::stats::Robustness;
use petabricks::tuner::{Autotuner, TunerOptions, TuningOutcome};
use rand::rngs::SmallRng;

/// Forces a multi-threaded pool even on single-core CI runners (same
/// idiom as `parallel_determinism.rs`).
fn force_parallel_pool() {
    static FORCE: std::sync::Once = std::sync::Once::new();
    // SAFETY: the Once serializes the single write; all reads happen
    // through Pool::global()'s one-time init afterwards.
    FORCE.call_once(|| unsafe { std::env::set_var(THREADS_ENV, "4") });
}

/// Silences the panic hook for injected panics only — chaos runs
/// raise hundreds of them on pool threads, where libtest's output
/// capture cannot reach. Real panics still print and fail loudly.
fn quiet_injected_panics() {
    static QUIET: std::sync::Once = std::sync::Once::new();
    QUIET.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|message| message.contains("pb_faults: injected panic"));
            if !injected {
                default_hook(info);
            }
        }));
    });
}

fn tune_runner(runner: &dyn TrialRunner, options: TunerOptions) -> TuningOutcome {
    Autotuner::new(runner, AccuracyBins::new(vec![0.05, 0.2]), options)
        .tune_outcome()
        .unwrap_or_else(|e| panic!("tuning failed: {e}"))
}

fn clustering_options(parallel: bool) -> TunerOptions {
    let mut options = TunerOptions::fast_preset(64, 0xFA07);
    options.parallel_trials = parallel;
    options
}

/// Injected panics and corrupted costs, each healing on first retry,
/// must leave every tuner decision bitwise untouched: the evaluator
/// retries beneath the trial cache, so only the attempt counters —
/// zeroed by `decision_image` — may differ from the fault-free run.
#[test]
fn chaos_with_retries_is_decision_identical_to_fault_free() {
    force_parallel_pool();
    quiet_injected_panics();
    let clean_runner = TransformRunner::new(Clustering, CostModel::Virtual);
    let plan = FaultConfig {
        seed: 0xC4A05,
        panic_rate: 0.10,
        nonfinite_rate: 0.05,
        faults_per_trial: 1,
        ..FaultConfig::default()
    };

    let clean = tune_runner(&clean_runner, clustering_options(false));
    for parallel in [false, true] {
        let chaos_runner = FaultyRunner::new(&clean_runner, plan.clone());
        assert!(
            chaos_runner.deterministic(),
            "bounded faults without noise must keep replayability"
        );
        let chaos = tune_runner(&chaos_runner, clustering_options(parallel));

        let injected = chaos_runner.report();
        assert!(
            injected.panics > 0,
            "chaos must really inject: {injected:?}"
        );
        assert!(
            injected.nonfinite > 0,
            "chaos must really corrupt: {injected:?}"
        );
        assert_eq!(chaos.stats.trial_panics, injected.panics);
        assert_eq!(chaos.stats.trial_nonfinite, injected.nonfinite);
        assert_eq!(
            chaos.stats.trial_retries,
            injected.panics + injected.nonfinite,
            "every single-shot fault costs exactly one retry"
        );
        assert_eq!(chaos.stats.quarantined, 0, "retries must heal everything");

        // The decisions — program, decision counters, survivors — are
        // bitwise those of the run that never saw a fault.
        assert_eq!(clean.program, chaos.program);
        assert_eq!(
            clean.stats.decision_image(),
            chaos.stats.decision_image(),
            "parallel={parallel}"
        );
        assert_eq!(clean.final_population, chaos.final_population);
    }
}

/// Fault injection is keyed by trial coordinate, not call order, so a
/// chaos run itself is bit-identical — raw fault counters included —
/// between forced-sequential and 4-thread-pool evaluation.
#[test]
fn chaos_runs_are_bit_identical_across_evaluator_modes() {
    force_parallel_pool();
    quiet_injected_panics();
    let clean_runner = TransformRunner::new(Clustering, CostModel::Virtual);
    let plan = FaultConfig {
        seed: 0xD1CE,
        panic_rate: 0.12,
        nonfinite_rate: 0.06,
        faults_per_trial: 1,
        ..FaultConfig::default()
    };
    let seq_runner = FaultyRunner::new(&clean_runner, plan.clone());
    let par_runner = FaultyRunner::new(&clean_runner, plan);
    let seq = tune_runner(&seq_runner, clustering_options(false));
    let par = tune_runner(&par_runner, clustering_options(true));
    assert_eq!(seq.program, par.program);
    assert_eq!(seq.stats, par.stats, "full stats, fault counters included");
    assert_eq!(seq.final_population, par.final_population);
    assert_eq!(seq_runner.report(), par_runner.report());
    assert!(seq.stats.trial_panics > 0);
}

/// Coordinates that fault on *every* attempt exhaust their retries and
/// quarantine with the worst-cost sentinel; the run completes without
/// aborting and stays deterministic across evaluator modes.
#[test]
fn permanent_faults_quarantine_without_aborting() {
    force_parallel_pool();
    quiet_injected_panics();
    let clean_runner = TransformRunner::new(Clustering, CostModel::Virtual);
    let plan = FaultConfig {
        seed: 0xBAD,
        panic_rate: 0.04,
        faults_per_trial: u32::MAX,
        ..FaultConfig::default()
    };
    let seq_runner = FaultyRunner::new(&clean_runner, plan.clone());
    let par_runner = FaultyRunner::new(&clean_runner, plan);
    let seq = tune_runner(&seq_runner, clustering_options(false));
    let par = tune_runner(&par_runner, clustering_options(true));
    assert!(
        seq.stats.quarantined > 0,
        "permanent faults must quarantine: {:?}",
        seq.stats
    );
    assert_eq!(
        seq.stats.trial_retries,
        2 * seq.stats.quarantined,
        "each quarantine burns the full retry budget"
    );
    assert!(
        !seq.program.entries().is_empty(),
        "tuning still produces a program"
    );
    assert_eq!(seq.program, par.program);
    assert_eq!(seq.stats, par.stats);
    assert_eq!(seq.final_population, par.final_population);
}

/// Two interchangeable algorithms, one 25% cheaper: the tuner must
/// learn to prefer algorithm 0.
struct CloseRace;

impl Transform for CloseRace {
    type Input = ();
    type Output = ();
    fn name(&self) -> &str {
        "close_race"
    }
    fn schema(&self) -> Schema {
        let mut s = Schema::new("close_race");
        s.add_switch("algo", 2);
        s
    }
    fn generate_input(&self, _n: u64, _rng: &mut SmallRng) {}
    fn execute(&self, _i: &(), ctx: &mut ExecCtx<'_>) {
        let factor = match ctx.switch("algo").unwrap() {
            0 => 1.0,
            _ => 1.25,
        };
        ctx.charge(factor * ctx.size() as f64);
    }
    fn accuracy(&self, _i: &(), _o: &()) -> f64 {
        1.0
    }
}

fn tune_noisy(robustness: Robustness, plan_seed: u64) -> (usize, TuningOutcome) {
    let clean_runner = TransformRunner::new(CloseRace, CostModel::Virtual);
    let noisy_runner = FaultyRunner::new(
        &clean_runner,
        FaultConfig {
            seed: plan_seed,
            jitter: 0.04,
            outlier_rate: 0.12,
            outlier_factor: 60.0,
            ..FaultConfig::default()
        },
    );
    assert!(
        !noisy_runner.deterministic(),
        "noise must demote the runner to wall-clock semantics"
    );
    let mut options = TunerOptions::fast_preset(64, 0x5EED);
    options.min_trials = 5;
    options.comparator.min_trials = 5;
    options.comparator.max_trials = 25;
    options.comparator.robustness = robustness;
    let outcome = Autotuner::new(&noisy_runner, AccuracyBins::new(vec![0.5]), options)
        .tune_outcome()
        .unwrap_or_else(|e| panic!("tuning failed: {e}"));
    let schema = clean_runner.schema();
    let algo = outcome
        .program
        .entry(0)
        .config
        .switch(schema, "algo")
        .unwrap();
    (algo, outcome)
}

/// Under seeded outlier spikes, the winsorized comparator still finds
/// the genuinely cheaper algorithm at a plan seed where the plain mean
/// comparator is flipped by the spikes — and because noise demotes the
/// runner to wall-clock semantics, every trial re-samples (no memo
/// replay of a noisy measurement).
#[test]
fn winsorized_comparator_converges_where_mean_is_flipped_by_outliers() {
    force_parallel_pool();
    let plan_seed = NOISE_PLAN_SEED;
    let (mean_algo, _) = tune_noisy(Robustness::Mean, plan_seed);
    let (robust_algo, robust) = tune_noisy(Robustness::Winsorized { fraction: 0.2 }, plan_seed);
    assert_eq!(
        mean_algo, 1,
        "plan seed must be one where outliers flip the mean comparator"
    );
    assert_eq!(robust_algo, 0, "winsorizing must recover the true winner");
    assert_eq!(
        robust.stats.cache_hits, 0,
        "noisy trials must never replay from the memo"
    );
    assert_eq!(robust.stats.cache_hits_warm, 0);
}

/// Plan seed pinned for the flip scenario above (found by scanning;
/// any seed where the mean comparator picks the slower algorithm and
/// the winsorized comparator picks the cheaper one would do).
const NOISE_PLAN_SEED: u64 = 6;
