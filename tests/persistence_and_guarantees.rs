//! Integration: tuned programs persist to JSON config files and the
//! runtime accuracy-guarantee machinery works against them (§3.3).

use petabricks::benchmarks::ImageCompression;
use petabricks::config::AccuracyBins;
use petabricks::linalg::Matrix;
use petabricks::runtime::guarantee::{run_verified, GuaranteeError};
use petabricks::runtime::{CostModel, TransformRunner, TunedProgram};
use petabricks::tuner::{Autotuner, TunerOptions};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn tune_compression() -> (TransformRunner<ImageCompression>, TunedProgram) {
    let runner = TransformRunner::new(ImageCompression, CostModel::Virtual);
    let bins = AccuracyBins::new(vec![0.3, 1.0]);
    let tuned = Autotuner::new(&runner, bins, TunerOptions::fast_preset(16, 0x9E5))
        .tune()
        .expect("reachable");
    (runner, tuned)
}

#[test]
fn tuned_program_round_trips_through_json() {
    let (runner, tuned) = tune_compression();
    let json = tuned.to_json();
    let reloaded = TunedProgram::from_json(&json).expect("parses back");
    assert_eq!(tuned, reloaded);
    // The reloaded configuration still validates and still runs.
    for entry in reloaded.entries() {
        entry
            .config
            .validate(runner.schema())
            .expect("persisted config validates against the schema");
    }
}

#[test]
fn runtime_checked_execution_meets_requirement() {
    let (runner, tuned) = tune_compression();
    let mut rng = SmallRng::seed_from_u64(5);
    let image = Matrix::random_uniform(16, 16, &mut rng);
    let run = run_verified(&runner, &tuned, &image, 16, 0.3, 2, 1).expect("0.3 is trained");
    assert!(run.accuracy >= 0.3);
    assert!(run.output.rank() >= 1);
}

#[test]
fn requirements_above_training_are_rejected() {
    let (runner, tuned) = tune_compression();
    let mut rng = SmallRng::seed_from_u64(6);
    let image = Matrix::random_uniform(16, 16, &mut rng);
    let err = run_verified(&runner, &tuned, &image, 16, 5.0, 1, 1).unwrap_err();
    assert!(matches!(err, GuaranteeError::NoSufficientBin { .. }));
}

#[test]
fn trial_cache_sidecar_warms_the_next_tuning_run() {
    let path = std::env::temp_dir().join(format!(
        "pb_trial_cache_sidecar_{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let runner = TransformRunner::new(ImageCompression, CostModel::Virtual);
    let bins = AccuracyBins::new(vec![0.3, 1.0]);
    let options = TunerOptions::fast_preset(16, 0x51DE);

    // Cold run: nothing to preload; the memo is written on exit.
    let cold = Autotuner::new(&runner, bins.clone(), options)
        .with_trial_cache(&path)
        .tune_outcome()
        .expect("tunes");
    assert_eq!(cold.stats.cache_hits_warm, 0);
    assert!(path.exists(), "sidecar must be written after tuning");

    // Warm run: identical trial outcomes come from the sidecar, so
    // the tuned program is identical while executed trials drop.
    let warm = Autotuner::new(&runner, bins, options)
        .with_trial_cache(&path)
        .tune_outcome()
        .expect("tunes");
    assert!(
        warm.stats.cache_hits_warm > 0,
        "second run must reuse persisted trials: {:?}",
        warm.stats
    );
    assert!(
        warm.stats.trials < cold.stats.trials,
        "warm start must execute fewer trials: {} vs {}",
        warm.stats.trials,
        cold.stats.trials
    );
    assert_eq!(cold.program, warm.program);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn config_files_are_human_editable() {
    // A user can hand-edit the persisted JSON (the paper's config
    // files were plain text for the same reason).
    let (runner, tuned) = tune_compression();
    let json = tuned.to_json();
    assert!(json.contains("rank_k") || json.contains("Int"), "{json}");
    let reloaded = TunedProgram::from_json(&json).unwrap();
    let outcome = {
        use petabricks::runtime::TrialRunner;
        runner.run_trial(&reloaded.entry(1).config, 16, 42)
    };
    assert!(outcome.accuracy >= 0.5, "tuned entry still delivers");
}
