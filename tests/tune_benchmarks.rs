//! End-to-end integration: every benchmark from §6.1 tunes to its
//! accuracy bins and the resulting configurations actually deliver the
//! promised accuracy on fresh inputs.

use petabricks::benchmarks::binpacking::ratio_to_accuracy;
use petabricks::benchmarks::{
    BinPacking, Clustering, Helmholtz3d, ImageCompression, Poisson2d, Preconditioner,
};
use petabricks::config::AccuracyBins;
use petabricks::runtime::{CostModel, Transform, TransformRunner, TrialRunner};
use petabricks::tuner::{Autotuner, TunerOptions};

/// Tunes a benchmark and validates the tuned frontier: every bin's
/// configuration meets its target on fresh seeds (mean of 3 runs, with
/// slack for sampling noise), and costs do not decrease as targets
/// tighten.
fn tune_and_check<T>(transform: T, bins: Vec<f64>, max_size: u64, slack: f64)
where
    T: Transform + Send + Sync,
{
    let runner = TransformRunner::new(transform, CostModel::Virtual);
    let bins = AccuracyBins::new(bins);
    let tuned = Autotuner::new(&runner, bins, TunerOptions::fast_preset(max_size, 0xE2E))
        .tune()
        .unwrap_or_else(|e| panic!("{} failed to tune: {e}", runner.name()));

    for entry in tuned.entries() {
        let mean_acc: f64 = (100..103)
            .map(|seed| runner.run_trial(&entry.config, max_size, seed).accuracy)
            .sum::<f64>()
            / 3.0;
        assert!(
            mean_acc >= entry.target - slack,
            "{}: bin {} delivers {} on fresh inputs",
            runner.name(),
            entry.target,
            mean_acc
        );
    }
    // The frontier is weakly cost-ordered by target.
    let costs: Vec<f64> = tuned.entries().iter().map(|e| e.observed_time).collect();
    for w in costs.windows(2) {
        assert!(
            w[1] >= w[0] * 0.5,
            "{}: higher accuracy should not be drastically cheaper: {costs:?}",
            runner.name()
        );
    }
}

#[test]
fn binpacking_tunes() {
    tune_and_check(
        BinPacking,
        vec![ratio_to_accuracy(1.5), ratio_to_accuracy(1.1)],
        512,
        0.05,
    );
}

#[test]
fn clustering_tunes() {
    tune_and_check(Clustering, vec![0.05, 0.2], 128, 0.04);
}

#[test]
fn imagecompression_tunes() {
    tune_and_check(ImageCompression, vec![0.3, 1.0], 24, 0.05);
}

#[test]
fn preconditioner_tunes() {
    tune_and_check(Preconditioner, vec![0.5, 2.0], 16, 0.1);
}

#[test]
fn poisson_tunes() {
    tune_and_check(Poisson2d, vec![1.0, 5.0], 15, 0.2);
}

#[test]
fn helmholtz_tunes() {
    tune_and_check(Helmholtz3d, vec![1.0, 3.0], 7, 0.2);
}

#[test]
fn tuned_binpacking_prefers_cheap_algorithms_at_loose_accuracy() {
    let runner = TransformRunner::new(BinPacking, CostModel::Virtual);
    let bins = AccuracyBins::new(vec![ratio_to_accuracy(1.5), ratio_to_accuracy(1.05)]);
    let tuned = Autotuner::new(&runner, bins, TunerOptions::fast_preset(1024, 0xBEEF))
        .tune()
        .unwrap();
    // The loose bin's config must be meaningfully cheaper than the
    // tight bin's (NextFit-style O(n) vs sorting/search-based).
    let loose = tuned.entry(0).observed_time;
    let tight = tuned.entry(1).observed_time;
    assert!(
        loose * 1.5 < tight,
        "loose bin ({loose}) should be much cheaper than tight bin ({tight})"
    );
}
