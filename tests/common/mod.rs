//! Shared helpers for the integration tests: the random DSL program
//! generator used by both the differential suite (`vm_differential`)
//! and the static-analysis suite (`analysis`), so every program shape
//! the VM is fuzzed on is also fuzzed through the verifier.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Builds a random scalar expression over the bound variables. Depth
/// is bounded; division, remainder, comparisons, short-circuit logic,
/// builtins, and `rand` are all fair game — both executors must agree
/// bit for bit whatever comes out (including NaN and infinities).
fn gen_expr(rng: &mut SmallRng, vars: &[String], depth: usize) -> String {
    let leaf = depth == 0 || rng.gen_range(0..10) < 3;
    if leaf {
        match rng.gen_range(0..4) {
            0 => format!("{}", rng.gen_range(-4..6)),
            1 => format!("{}.5", rng.gen_range(0..3)),
            2 => format!("a[{}]", rng.gen_range(0..4)),
            _ => vars[rng.gen_range(0..vars.len())].clone(),
        }
    } else {
        let a = gen_expr(rng, vars, depth - 1);
        let b = gen_expr(rng, vars, depth - 1);
        match rng.gen_range(0..14) {
            0 => format!("({a} + {b})"),
            1 => format!("({a} - {b})"),
            2 => format!("({a} * {b})"),
            3 => format!("({a} / {b})"),
            4 => format!("({a} % {b})"),
            5 => format!("({a} < {b})"),
            6 => format!("({a} >= {b})"),
            7 => format!("({a} == {b})"),
            8 => format!("({a} && {b})"),
            9 => format!("({a} || {b})"),
            10 => format!("min({a}, {b})"),
            11 => format!("max({a}, abs({b}))"),
            12 => format!("floor(({a}) + sqrt(abs({b})))"),
            // min() absorbs NaN/infinite bounds (f64::min returns the
            // finite side), so the range below is always valid.
            _ => format!("rand(0, min(abs({a}), 9))"),
        }
    }
}

/// Builds a random straight-line rule body: `let` bindings,
/// re-assignments, and constant-indexed array writes, all scalar.
pub fn gen_straight_line_program(seed: u64, n_stmts: usize) -> String {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut vars: Vec<String> = vec!["acc".to_string()];
    let mut body = String::new();
    for i in 0..n_stmts {
        let expr = gen_expr(&mut rng, &vars, 3);
        match rng.gen_range(0..4) {
            0 => {
                let name = format!("v{i}");
                body.push_str(&format!("let {name} = {expr};\n"));
                vars.push(name);
            }
            1 => {
                let target = vars[rng.gen_range(0..vars.len())].clone();
                body.push_str(&format!("{target} = {expr};\n"));
            }
            2 => body.push_str(&format!("o[{}] = {expr};\n", rng.gen_range(0..4))),
            _ => body.push_str(&format!("acc = {expr};\n")),
        }
    }
    format!(
        r#"transform t from In[n] to Out[n], Acc {{
            to (Out o, Acc acc) from (In a) {{
                {body}
            }}
        }}"#
    )
}
