//! The comparison arena's behavioural guarantees:
//!
//! * the arena-driven child-vs-parent merge makes **exactly** the
//!   decisions (and draws exactly the trials) of the old blocking
//!   one-comparison-at-a-time merge, for identical seeds;
//! * a pair verdict cached during the KEEP sort / promotion of a prune
//!   call is **reused** during the post-promotion re-sort — the draw
//!   counters prove zero re-tests.

use petabricks::config::{AccuracyBins, Schema, Value};
use petabricks::runtime::{CostModel, ExecCtx, Transform, TransformRunner};
use petabricks::stats::{
    welch_t_test, Comparator, ComparatorConfig, CompareOutcome, CompareStep, Which,
};
use petabricks::tuner::{Arena, Candidate, EvalMode, Evaluator, PairContest, Population};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::Rng;

/// Cost = `level · n · (1 ± 1%)` with deterministic per-seed noise;
/// accuracy = `level / 64`. The noise keeps close comparisons
/// ambiguous, so the adaptive comparator genuinely draws extra trials.
#[derive(Clone, Copy)]
struct NoisyLevels;

impl Transform for NoisyLevels {
    type Input = f64;
    type Output = f64;
    fn name(&self) -> &str {
        "noisy_levels"
    }
    fn schema(&self) -> Schema {
        let mut s = Schema::new("noisy_levels");
        s.add_accuracy_variable("level", 1, 64);
        s
    }
    fn generate_input(&self, _n: u64, rng: &mut SmallRng) -> f64 {
        rng.gen_range(0.99..1.01)
    }
    fn execute(&self, noise: &f64, ctx: &mut ExecCtx<'_>) -> f64 {
        let level = ctx.param("level").unwrap() as f64;
        ctx.charge(level * ctx.size() as f64 * noise);
        level / 64.0
    }
    fn accuracy(&self, _i: &f64, o: &f64) -> f64 {
        *o
    }
}

fn comparator() -> Comparator {
    Comparator::new(ComparatorConfig {
        min_trials: 3,
        max_trials: 10,
        ..ComparatorConfig::default()
    })
}

/// Builds a tested population: one candidate per parent level, then
/// one untested child per `(parent, level)` pair appended in order.
fn build_population<T: Transform>(
    runner: &TransformRunner<T>,
    evaluator: &Evaluator<'_>,
    parent_levels: &[i64],
    children: &[(usize, i64)],
    n: u64,
    min_trials: u64,
) -> Population {
    let schema = runner.schema();
    let mut pop = Population::new();
    let mut id = 0;
    let with_level = |level: i64, id: &mut u64| {
        let mut config = schema.default_config();
        config
            .set_by_name(schema, "level", Value::Int(level))
            .unwrap();
        let c = Candidate::new(*id, config);
        *id += 1;
        c
    };
    for &level in parent_levels {
        pop.add(with_level(level, &mut id));
    }
    pop.test_all(evaluator, n, min_trials);
    for &(_, level) in children {
        pop.add(with_level(level, &mut id));
    }
    // Phase-2 equivalent: batch the children's initial trials.
    pop.test_all(evaluator, n, min_trials);
    pop
}

/// The pre-arena merge, verbatim semantics: children decided one
/// blocking comparison at a time, in plan order, each comparator-
/// requested draw executed immediately through the evaluator, each
/// rejected child truncated before the next pair starts.
fn blocking_reference_merge(
    pop: &mut Population,
    parent_of: &[usize],
    n: u64,
    evaluator: &Evaluator<'_>,
    comparator: &Comparator,
    alpha: f64,
) -> Vec<bool> {
    let base = pop.len() - parent_of.len();
    let mut accepted = Vec::with_capacity(parent_of.len());
    for (k, &parent) in parent_of.iter().enumerate() {
        let child = base + k;
        let verdict = loop {
            let time_of = |pop: &Population, i: usize| {
                pop.candidates()[i]
                    .stats(n)
                    .map(|s| s.time.clone())
                    .unwrap_or_default()
            };
            let step = comparator.decide_samples(&time_of(pop, child), &time_of(pop, parent));
            match step {
                CompareStep::Decided(outcome) => break outcome,
                CompareStep::NeedMore { which, draws } => {
                    let target = match which {
                        Which::A => child,
                        Which::B => parent,
                    };
                    for _ in 0..draws {
                        pop.candidates_mut()[target].run_one_trial(evaluator, n);
                    }
                }
            }
        };
        let faster = verdict == CompareOutcome::Less;
        let more_accurate = {
            let child = pop.candidates()[child].stats(n).expect("tested");
            let parent = pop.candidates()[parent].stats(n).expect("tested");
            let test = welch_t_test(&child.accuracy, &parent.accuracy);
            test.rejects_equality(alpha) && child.accuracy.mean() > parent.accuracy.mean()
        };
        accepted.push(faster || more_accurate);
    }
    accepted
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arena-driven child-vs-parent merging must reproduce the old
    /// sequential merge exactly: same accept/reject decisions and the
    /// same per-candidate statistics (same draws on the same seeds).
    #[test]
    fn arena_merge_matches_blocking_sequential_merge(
        parent_levels in prop::collection::vec(1i64..64, 1..5),
        raw_children in prop::collection::vec((0usize..8, 1i64..64), 1..10),
    ) {
        let children: Vec<(usize, i64)> = raw_children
            .iter()
            .map(|&(p, level)| (p % parent_levels.len(), level))
            .collect();
        let parent_of: Vec<usize> = children.iter().map(|&(p, _)| p).collect();
        let n = 8;
        let comparator = comparator();
        let min_trials = comparator.config().min_trials;
        let runner = TransformRunner::new(NoisyLevels, CostModel::Virtual);

        // Production path: one arena session of per-parent chains
        // (same-parent pairs gated in plan order, chains for
        // different parents batching their draws together).
        let eval_arena = Evaluator::new(&runner, EvalMode::Sequential, true);
        let mut pop_arena = build_population(
            &runner, &eval_arena, &parent_levels, &children, n, min_trials,
        );
        let (accepted_arena, report) =
            pop_arena.merge_children(&parent_of, n, &eval_arena, &comparator, 0.05);

        // Reference path: the old blocking sequential merge.
        let eval_ref = Evaluator::new(&runner, EvalMode::Sequential, true);
        let mut pop_ref = build_population(
            &runner, &eval_ref, &parent_levels, &children, n, min_trials,
        );
        let accepted_ref =
            blocking_reference_merge(&mut pop_ref, &parent_of, n, &eval_ref, &comparator, 0.05);

        prop_assert_eq!(&accepted_arena, &accepted_ref);
        // Identical decisions must come from identical statistics:
        // every candidate drew the same trials in both worlds.
        for (a, b) in pop_arena.candidates().iter().zip(pop_ref.candidates()) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.trials(n), b.trials(n));
            let (sa, sb) = (a.stats(n).unwrap(), b.stats(n).unwrap());
            prop_assert_eq!(sa.time.mean().to_bits(), sb.time.mean().to_bits());
            prop_assert_eq!(sa.accuracy.mean().to_bits(), sb.accuracy.mean().to_bits());
        }
        // And the arena really batched: at least one round ran unless
        // every verdict decided straight from cached statistics.
        if report.draws > 0 {
            prop_assert!(report.rounds > 0);
        }
    }
}

/// The demand-merge widening: a same-parent pair no longer waits for
/// unrelated parents' pairs. Two chains — parent P with a decisive
/// first child and an ambiguous second, parent Q with one ambiguous
/// child — run jointly and solo. The joint session must do exactly
/// the solo draws (chains are disjoint, decisions unchanged) in
/// strictly fewer rounds, because P's *second* link batches its draws
/// into the same rounds as Q's chain instead of into waves of its own.
/// Like [`NoisyLevels`] but with ±10% noise: adjacent levels overlap,
/// so the comparator genuinely needs repeated draws to separate them.
/// (At ±1% every distinct-level t-test decides from the minimum fill,
/// and equal levels share bitwise-identical samples — trial seeds are
/// candidate-independent — so nothing ever draws.)
#[derive(Clone, Copy)]
struct WideNoise;

impl Transform for WideNoise {
    type Input = f64;
    type Output = f64;
    fn name(&self) -> &str {
        "wide_noise"
    }
    fn schema(&self) -> Schema {
        let mut s = Schema::new("wide_noise");
        s.add_accuracy_variable("level", 1, 64);
        s
    }
    fn generate_input(&self, _n: u64, rng: &mut SmallRng) -> f64 {
        rng.gen_range(0.9..1.1)
    }
    fn execute(&self, noise: &f64, ctx: &mut ExecCtx<'_>) -> f64 {
        let level = ctx.param("level").unwrap() as f64;
        ctx.charge(level * ctx.size() as f64 * noise);
        level / 64.0
    }
    fn accuracy(&self, _i: &f64, o: &f64) -> f64 {
        *o
    }
}

#[test]
fn same_parent_chains_share_rounds_across_parents() {
    let n = 8;
    let comparator = comparator();
    let min_trials = comparator.config().min_trials;
    let runner = TransformRunner::new(WideNoise, CostModel::Virtual);
    let parents = [8i64, 32];
    // (parent index, level): the 56-level child is decisively slower
    // than parent 8; the 9-vs-8 and 33-vs-32 pairs sit inside the ±10%
    // noise band, so both chains draw repeated comparator trials.
    let chain_p = [(0usize, 56i64), (0, 9)];
    let chain_q = [(1usize, 33i64)];
    let joint: Vec<(usize, i64)> = chain_p.iter().chain(&chain_q).copied().collect();

    let run = |children: &[(usize, i64)]| {
        let evaluator = Evaluator::new(&runner, EvalMode::Sequential, true);
        let mut pop = build_population(&runner, &evaluator, &parents, children, n, min_trials);
        let parent_of: Vec<usize> = children.iter().map(|&(p, _)| p).collect();
        pop.merge_children(&parent_of, n, &evaluator, &comparator, 0.05)
    };

    let (accepted_joint, joint_report) = run(&joint);
    let (accepted_p, p_report) = run(&chain_p);
    let (accepted_q, q_report) = run(&chain_q);

    // Chains are disjoint, so joining them changes no decision and
    // re-draws no trial...
    assert_eq!(accepted_joint[..2], accepted_p[..]);
    assert_eq!(accepted_joint[2..], accepted_q[..]);
    assert_eq!(joint_report.draws, p_report.draws + q_report.draws);
    // ...but the joint session interleaves the chains' rounds. Both
    // ambiguous pairs draw repeatedly, so round sharing must show up
    // as strictly fewer rounds than running the chains back to back
    // (which is what parent-disjoint waves degenerated to here: C2
    // could not enter a wave until Q's whole chain finished its own).
    assert!(
        p_report.rounds > 0 && q_report.rounds > 0,
        "both chains must really draw: {p_report:?} {q_report:?}"
    );
    assert!(
        joint_report.rounds < p_report.rounds + q_report.rounds,
        "chains must share rounds: joint {joint_report:?} vs {p_report:?} + {q_report:?}"
    );
}

/// Cost = `level` (size-independent), accuracy = `level / 1000`.
#[derive(Clone, Copy)]
struct Spread;

impl Transform for Spread {
    type Input = ();
    type Output = f64;
    fn name(&self) -> &str {
        "spread"
    }
    fn schema(&self) -> Schema {
        let mut s = Schema::new("spread");
        s.add_accuracy_variable("level", 1, 1000);
        s
    }
    fn generate_input(&self, _n: u64, _rng: &mut SmallRng) {}
    fn execute(&self, _i: &(), ctx: &mut ExecCtx<'_>) -> f64 {
        let level = ctx.param("level").unwrap() as f64;
        ctx.charge(level);
        level / 1000.0
    }
    fn accuracy(&self, _i: &(), o: &f64) -> f64 {
        *o
    }
}

/// The promotion scenario with K = 1: the rough sort keeps `a`
/// (misleading cached mean), discards the truly-faster `d`; promotion
/// decides `(d, a)` with fresh draws; the re-sort then needs exactly
/// that verdict again — and must take it from the pair memo.
fn promotion_population(runner: &TransformRunner<Spread>, n: u64) -> (Population, usize, usize) {
    let schema = runner.schema();
    let mut pop = Population::new();
    // (level = true cost, bogus cached time): rough order a, d.
    for (i, &(level, fake_time)) in [(500i64, 500.0f64), (10, 950.0)].iter().enumerate() {
        let mut config = schema.default_config();
        config
            .set_by_name(schema, "level", Value::Int(level))
            .unwrap();
        let mut c = Candidate::new(i as u64, config);
        let stats = c.stats_mut(n);
        stats.time.push(fake_time);
        stats.accuracy.push(level as f64 / 1000.0);
        pop.add(c);
    }
    (pop, 0, 1) // (population, index of a, index of d)
}

/// Regression: a pair verdict cached during promotion is reused during
/// the re-sort. Total prune draws equal the draws of deciding that one
/// pair once — the re-sort re-tests nothing — and the session memo
/// reports the reuse.
#[test]
fn resort_reuses_pair_verdict_cached_during_promotion() {
    let runner = TransformRunner::new(Spread, CostModel::Virtual);
    let n = 4;
    let comparator = Comparator::new(ComparatorConfig {
        min_trials: 10,
        max_trials: 50,
        ..ComparatorConfig::default()
    });
    let bins = AccuracyBins::new(vec![0.005]);

    let evaluator = Evaluator::new(&runner, EvalMode::Sequential, true);
    let (mut pop, a, d) = promotion_population(&runner, n);
    let report = pop.prune(n, &bins, 1, &evaluator, &comparator);
    // The truly fastest candidate won the bin; the best-accuracy
    // safety net keeps the other.
    let schema = runner.schema();
    let mut levels: Vec<i64> = pop
        .candidates()
        .iter()
        .map(|c| c.config.int(schema, "level").unwrap())
        .collect();
    levels.sort_unstable();
    assert_eq!(levels, vec![10, 500], "prune outcome changed: {report:?}");
    assert!(
        report.arena.memo_hits >= 1,
        "the re-sort must replay the promotion verdict from the memo: {report:?}"
    );

    // Twin measurement: deciding the single (d, a) pair from the same
    // starting statistics costs exactly the draws the whole prune
    // call drew — so the re-sort re-tested nothing.
    let eval_twin = Evaluator::new(&runner, EvalMode::Sequential, true);
    let (mut pop_twin, a2, d2) = promotion_population(&runner, n);
    assert_eq!((a, d), (a2, d2));
    let mut arena = Arena::new(&eval_twin, &comparator);
    let mut pair = [PairContest::new(d2, a2)];
    arena.run(pop_twin.candidates_mut(), n, &mut pair);
    assert_eq!(pair[0].verdict, Some(CompareOutcome::Less));
    let pair_draws = arena.report().draws;
    assert!(pair_draws > 0, "the promotion decision must draw trials");
    assert_eq!(
        report.arena.draws, pair_draws,
        "prune must draw exactly one pair-decision's trials; more means \
         the re-sort re-tested a memoized pair"
    );
}

/// The blocking-compatible wrapper is itself arena-driven: a single
/// `compare_time` call batches its min-trial fill instead of drawing
/// one trial at a time, and still agrees with the decision core.
#[test]
fn compare_time_agrees_with_decision_core() {
    let runner = TransformRunner::new(NoisyLevels, CostModel::Virtual);
    let n = 8;
    let comparator = comparator();
    let evaluator = Evaluator::new(&runner, EvalMode::Sequential, true);
    let mut pop = build_population(&runner, &evaluator, &[4, 48], &[], n, 0);
    assert_eq!(
        pop.compare_time(0, 1, n, &evaluator, &comparator),
        CompareOutcome::Less
    );
    assert_eq!(
        pop.compare_time(1, 0, n, &evaluator, &comparator),
        CompareOutcome::Greater
    );
    // Both candidates ended with at least the minimum trial count.
    for c in pop.candidates() {
        assert!(c.trials(n) >= comparator.config().min_trials);
    }
}
