//! Differential tests: the register VM must produce *bit-identical*
//! outputs — and identical virtual cost, which proves the execution
//! traces match statement for statement — to the tree-walking
//! interpreter, for every DSL program the repository ships
//! (`tests/dsl_end_to_end.rs`'s refine and Figure-3 kmeans,
//! `examples/dsl_kmeans.rs`'s host-function kmeans) plus synthetic
//! programs covering each language construct, across several
//! configurations, input sizes, and RNG seeds.
//!
//! Every comparison runs at every [`OptLevel`] (unoptimized, folded,
//! fully fused, and typed-specialized bytecode) and additionally pins
//! the RNG *draw count*: after each run both contexts draw one probe value, which
//! only matches if the executors consumed exactly the same number of
//! draws in the same order.

mod common;

use petabricks::config::{Config, Schema, Value as ConfigValue};
use petabricks::lang::interp::Value;
use petabricks::lang::{check_program, compile_program, parse_program, Interpreter, OptLevel};
use petabricks::runtime::ExecCtx;
use proptest::prelude::*;
use rand::Rng;
use std::collections::HashMap;

/// Every optimization level the pipeline exposes.
const OPT_LEVELS: [OptLevel; 4] = [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3];

/// Bitwise `f64` equality: stricter than `==` (distinguishes `-0.0`
/// from `0.0`) and total over NaN, which random programs do produce.
fn bits_eq(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

fn outputs_bits_eq(a: &HashMap<String, Value>, b: &HashMap<String, Value>) -> bool {
    a.len() == b.len()
        && a.iter()
            .all(|(k, v)| b.get(k).map(|w| v.bits_eq(w)).unwrap_or(false))
}

/// Runs `transform` through the tree-walker and through the VM at
/// every [`OptLevel`], asserting outputs, virtual cost, and RNG draw
/// counts are identical across all of them.
#[allow(clippy::too_many_arguments)]
fn assert_identical(
    src: &str,
    transform: &str,
    schema: &Schema,
    config: &Config,
    inputs: &HashMap<String, Value>,
    n: u64,
    seed: u64,
    hosts: &dyn Fn(&mut Interpreter),
) {
    let program = parse_program(src).expect("parses");
    check_program(&program).expect("well-formed");

    let mut tree = Interpreter::new(program.clone());
    hosts(&mut tree);
    let mut tree_ctx = ExecCtx::new(schema, config, n, seed);
    let tree_out = tree
        .run(transform, inputs, &mut tree_ctx)
        .expect("interpreter run succeeds");
    let tree_probe: u64 = tree_ctx.rng().gen();

    for level in OPT_LEVELS {
        let mut vm = Interpreter::new_compiled_at(program.clone(), level);
        hosts(&mut vm);
        let mut vm_ctx = ExecCtx::new(schema, config, n, seed);
        let vm_out = vm
            .run(transform, inputs, &mut vm_ctx)
            .expect("VM run succeeds");

        assert!(
            outputs_bits_eq(&tree_out, &vm_out),
            "outputs diverge for `{transform}` at {level:?} (n={n}, seed={seed}):\n\
             interp: {tree_out:?}\n    vm: {vm_out:?}"
        );
        assert!(
            bits_eq(tree_ctx.virtual_cost(), vm_ctx.virtual_cost()),
            "virtual cost diverges for `{transform}` at {level:?} (n={n}, seed={seed}): {} vs {}",
            tree_ctx.virtual_cost(),
            vm_ctx.virtual_cost()
        );
        let vm_probe: u64 = vm_ctx.rng().gen();
        assert_eq!(
            tree_probe, vm_probe,
            "RNG draw count diverges for `{transform}` at {level:?} (n={n}, seed={seed})"
        );
    }
}

fn no_hosts(_: &mut Interpreter) {}

/// The refine program from `tests/dsl_end_to_end.rs`: `for_enough`
/// wrapping an `either…or` over scalar data.
const REFINE: &str = r#"
    transform refine
    accuracy_metric refineacc
    from In[n]
    to Err, Work
    {
        to (Err e, Work w) from (In a) {
            e = 1;
            for_enough {
                either {
                    e = e / 2;
                    w = w + 1;
                } or {
                    e = e / 4;
                    w = w + 10;
                }
            }
        }
    }

    transform refineacc
    from Err, In[n]
    to Accuracy
    {
        to (Accuracy acc) from (Err e, In a) {
            acc = 0 - log(e) / log(10);
        }
    }
"#;

#[test]
fn refine_matches_across_configs_and_sizes() {
    let program = parse_program(REFINE).unwrap();
    let schema = petabricks::lang::extract_schema(&program, "refine");
    for n in [1u64, 4, 64] {
        let inputs: HashMap<String, Value> =
            [("In".to_string(), Value::Arr1(vec![0.0; n as usize]))].into();
        for iters in [1i64, 2, 7, 23] {
            for branch in [0usize, 1] {
                let mut config = schema.default_config();
                config
                    .set_by_name(&schema, "for_enough_0", ConfigValue::Int(iters))
                    .unwrap();
                config
                    .set_by_name(
                        &schema,
                        "either_0",
                        ConfigValue::Tree(petabricks::config::DecisionTree::single(branch)),
                    )
                    .unwrap();
                assert_identical(
                    REFINE, "refine", &schema, &config, &inputs, n, 42, &no_hosts,
                );
            }
        }
    }
}

#[test]
fn refine_metric_matches_too() {
    let program = parse_program(REFINE).unwrap();
    let schema = petabricks::lang::extract_schema(&program, "refineacc");
    let config = schema.default_config();
    let inputs: HashMap<String, Value> = [
        ("Err".to_string(), Value::Num(0.125)),
        ("In".to_string(), Value::Arr1(vec![0.0; 4])),
    ]
    .into();
    assert_identical(
        REFINE,
        "refineacc",
        &schema,
        &config,
        &inputs,
        4,
        0,
        &no_hosts,
    );
}

/// The Figure-3 kmeans program from `tests/dsl_end_to_end.rs`: a
/// two-producer choice site (`rule_Centroids`), `rand` in rule bodies,
/// 2-D indexing, and an accuracy-variable-sized intermediate.
const KMEANS_FIG3: &str = r#"
    transform kmeans
    accuracy_metric kmeansaccuracy
    accuracy_variable k 1 64
    from Points[2, n]
    through Centroids[2, k]
    to Assignments[n]
    {
        to (Centroids c) from (Points p) {
            for (i in 0 .. cols(c)) {
                let src = floor(rand(0, cols(p)));
                c[0, i] = p[0, src];
                c[1, i] = p[1, src];
            }
        }
        to (Centroids c) from (Points p) {
            for (i in 0 .. cols(c)) {
                let src = i * cols(p) / cols(c);
                c[0, i] = p[0, src];
                c[1, i] = p[1, src];
            }
        }
        to (Assignments a) from (Points p, Centroids c) {
            for_enough {
                for (i in 0 .. len(a)) {
                    a[i] = i % cols(c);
                }
            }
        }
    }
    transform kmeansaccuracy
    from Assignments[n], Points[2, n]
    to Accuracy
    {
        to (Accuracy acc) from (Assignments a, Points p) {
            acc = 1;
        }
    }
"#;

fn points(n: usize) -> HashMap<String, Value> {
    [(
        "Points".to_string(),
        Value::Arr2 {
            rows: 2,
            cols: n,
            data: (0..2 * n)
                .map(|i| (i as f64 * 0.37).sin() * 100.0)
                .collect(),
        },
    )]
    .into()
}

#[test]
fn kmeans_fig3_matches_across_rules_sizes_and_seeds() {
    let program = parse_program(KMEANS_FIG3).unwrap();
    let schema = petabricks::lang::extract_schema(&program, "kmeans");
    for n in [8usize, 32, 128] {
        let inputs = points(n);
        for rule in [0usize, 1] {
            for seed in [0u64, 1, 99] {
                let mut config = schema.default_config();
                config
                    .set_by_name(&schema, "k", ConfigValue::Int(5))
                    .unwrap();
                config
                    .set_by_name(&schema, "for_enough_0", ConfigValue::Int(3))
                    .unwrap();
                config
                    .set_by_name(
                        &schema,
                        "rule_Centroids",
                        ConfigValue::Tree(petabricks::config::DecisionTree::single(rule)),
                    )
                    .unwrap();
                assert_identical(
                    KMEANS_FIG3,
                    "kmeans",
                    &schema,
                    &config,
                    &inputs,
                    n as u64,
                    seed,
                    &no_hosts,
                );
            }
        }
    }
}

/// The host-function kmeans of `examples/dsl_kmeans.rs` (same program
/// text, same helper semantics): host calls with mutable first
/// arguments, early `return` out of a `for_enough`, and a
/// sub-expression host call in the metric.
const KMEANS_HOSTED: &str = r#"
    transform kmeans
    accuracy_metric kmeansaccuracy
    accuracy_variable k 1 64
    from Points[2, n]
    through Centroids[2, k]
    to Assignments[n]
    {
        to (Centroids c) from (Points p) {
            for (i in 0 .. cols(c)) {
                let src = floor(rand(0, cols(p)));
                c[0, i] = p[0, src];
                c[1, i] = p[1, src];
            }
        }

        to (Centroids c) from (Points p) {
            CenterPlus(c, p);
        }

        to (Assignments a) from (Points p, Centroids c) {
            for_enough {
                let change = AssignClusters(a, p, c);
                if (change == 0) { return; }
                NewClusterLocations(c, p, a);
            }
        }
    }

    transform kmeansaccuracy
    from Assignments[n], Points[2, n]
    to Accuracy
    {
        to (Accuracy acc) from (Assignments a, Points p) {
            acc = sqrt(2 * len(a) / SumClusterDistanceSquared(a, p));
        }
    }
"#;

fn arr2(v: &Value) -> (&Vec<f64>, usize) {
    match v {
        Value::Arr2 { data, cols, .. } => (data, *cols),
        _ => panic!("expected a 2-D array"),
    }
}

/// The example's host helpers, registered identically on both
/// executors.
fn kmeans_hosts(interp: &mut Interpreter) {
    interp.register_host_fn(
        "CenterPlus",
        Box::new(|centroids, rest| {
            let (p, n) = arr2(&rest[0]);
            if let Value::Arr2 { data, cols, .. } = centroids {
                let k = *cols;
                for i in 0..k {
                    let src = i * n.max(1) / k.max(1);
                    data[i] = p[src];
                    data[k + i] = p[n + src];
                }
            }
            Ok(Value::Num(0.0))
        }),
    );
    interp.register_host_fn(
        "AssignClusters",
        Box::new(|assignments, rest| {
            let (p, n) = arr2(&rest[0]);
            let (c, k) = arr2(&rest[1]);
            let mut changed = 0.0;
            if let Value::Arr1(a) = assignments {
                for i in 0..n {
                    let (x, y) = (p[i], p[n + i]);
                    let mut best = 0usize;
                    let mut best_d = f64::INFINITY;
                    for j in 0..k {
                        let dx = x - c[j];
                        let dy = y - c[k + j];
                        let d = dx * dx + dy * dy;
                        if d < best_d {
                            best_d = d;
                            best = j;
                        }
                    }
                    if a[i] != best as f64 {
                        a[i] = best as f64;
                        changed += 1.0;
                    }
                }
            }
            Ok(Value::Num(changed))
        }),
    );
    interp.register_host_fn(
        "NewClusterLocations",
        Box::new(|centroids, rest| {
            let (p, n) = arr2(&rest[0]);
            let a = match &rest[1] {
                Value::Arr1(a) => a.clone(),
                _ => return Err("assignments must be 1-D".into()),
            };
            if let Value::Arr2 { data, cols, .. } = centroids {
                let k = *cols;
                let mut sx = vec![0.0; k];
                let mut sy = vec![0.0; k];
                let mut count = vec![0.0; k];
                for i in 0..n {
                    let j = (a[i] as usize).min(k - 1);
                    sx[j] += p[i];
                    sy[j] += p[n + i];
                    count[j] += 1.0;
                }
                for j in 0..k {
                    if count[j] > 0.0 {
                        data[j] = sx[j] / count[j];
                        data[k + j] = sy[j] / count[j];
                    }
                }
            }
            Ok(Value::Num(0.0))
        }),
    );
    interp.register_host_fn(
        "SumClusterDistanceSquared",
        Box::new(|assignments, rest| {
            let a = match assignments {
                Value::Arr1(a) => a.clone(),
                _ => return Err("assignments must be 1-D".into()),
            };
            let (p, n) = arr2(&rest[0]);
            let k = a.iter().fold(0usize, |m, &v| m.max(v as usize)) + 1;
            let mut sx = vec![0.0; k];
            let mut sy = vec![0.0; k];
            let mut count = vec![0.0; k];
            for i in 0..n {
                let j = a[i] as usize;
                sx[j] += p[i];
                sy[j] += p[n + i];
                count[j] += 1.0;
            }
            let mut ssd = 0.0;
            for i in 0..n {
                let j = a[i] as usize;
                if count[j] > 0.0 {
                    let dx = p[i] - sx[j] / count[j];
                    let dy = p[n + i] - sy[j] / count[j];
                    ssd += dx * dx + dy * dy;
                }
            }
            Ok(Value::Num(ssd.max(f64::MIN_POSITIVE)))
        }),
    );
}

#[test]
fn hosted_kmeans_matches_across_configs() {
    let program = parse_program(KMEANS_HOSTED).unwrap();
    let schema = petabricks::lang::extract_schema(&program, "kmeans");
    for n in [8usize, 64] {
        let inputs = points(n);
        for (rule, iters, k) in [(0, 2, 3i64), (1, 5, 4), (0, 9, 2), (1, 1, 8)] {
            let mut config = schema.default_config();
            config
                .set_by_name(&schema, "k", ConfigValue::Int(k))
                .unwrap();
            config
                .set_by_name(&schema, "for_enough_0", ConfigValue::Int(iters))
                .unwrap();
            config
                .set_by_name(
                    &schema,
                    "rule_Centroids",
                    ConfigValue::Tree(petabricks::config::DecisionTree::single(rule)),
                )
                .unwrap();
            assert_identical(
                KMEANS_HOSTED,
                "kmeans",
                &schema,
                &config,
                &inputs,
                n as u64,
                7,
                &kmeans_hosts,
            );
        }
    }
}

#[test]
fn hosted_kmeans_metric_matches() {
    let program = parse_program(KMEANS_HOSTED).unwrap();
    let schema = petabricks::lang::extract_schema(&program, "kmeansaccuracy");
    let config = schema.default_config();
    let mut inputs = points(16);
    inputs.insert(
        "Assignments".to_string(),
        Value::Arr1((0..16).map(|i| (i % 3) as f64).collect()),
    );
    assert_identical(
        KMEANS_HOSTED,
        "kmeansaccuracy",
        &schema,
        &config,
        &inputs,
        16,
        0,
        &kmeans_hosts,
    );
}

/// A stress program touching every remaining construct: `while`,
/// `if`/`else`, nested `either`, short-circuit logic whose right-hand
/// side consumes RNG (ordering must match exactly), builtins, scalar
/// sub-transform calls under accuracy variables, and `verify_accuracy`.
const STRESS: &str = r#"
    transform stress
    accuracy_variable depth 1 8
    from In[n]
    to Out[n], Flag
    {
        to (Out o, Flag f) from (In a) {
            verify_accuracy;
            let j = 0;
            while (j < len(a)) {
                if (a[j] > 0.5) { o[j] = helper(a[j]); } else { o[j] = 0 - helper(a[j]); }
                j = j + 1;
            }
            f = a[0] > 0.25 && rand(0, 1) > 0.5;
            f = f || rand(0, 1) > 0.9;
            either {
                either { f = f + 10; } or { f = f + 20; }
            } or {
                f = f + depth;
            }
            o[0] = min(max(o[0], 0 - 2), 2) + pow(2, 3) + floor(1.7) + ceil(1.2)
                 + abs(0 - 1) + exp(0) + log(1) + sqrt(4);
        }
    }

    transform helper
    from X
    to Y
    {
        to (Y y) from (X x) { y = x * 3 + 1; }
    }
"#;

#[test]
fn stress_program_matches_across_choice_paths() {
    let program = parse_program(STRESS).unwrap();
    let schema = petabricks::lang::extract_schema(&program, "stress");
    let inputs: HashMap<String, Value> = [(
        "In".to_string(),
        Value::Arr1((0..24).map(|i| (i as f64 * 0.21).fract()).collect()),
    )]
    .into();
    for outer in [0usize, 1] {
        for inner in [0usize, 1] {
            for seed in [0u64, 3, 17] {
                let mut config = schema.default_config();
                config
                    .set_by_name(
                        &schema,
                        "either_0",
                        ConfigValue::Tree(petabricks::config::DecisionTree::single(outer)),
                    )
                    .unwrap();
                config
                    .set_by_name(
                        &schema,
                        "either_1",
                        ConfigValue::Tree(petabricks::config::DecisionTree::single(inner)),
                    )
                    .unwrap();
                config
                    .set_by_name(&schema, "depth", ConfigValue::Int(4))
                    .unwrap();
                assert_identical(
                    STRESS, "stress", &schema, &config, &inputs, 24, seed, &no_hosts,
                );
            }
        }
    }
}

#[test]
fn shipped_programs_compile_fully() {
    // Every rule of every shipped DSL program must lower to bytecode —
    // no silent interpreter fallbacks on the hot paths.
    for src in [REFINE, KMEANS_FIG3, KMEANS_HOSTED, STRESS] {
        let program = parse_program(src).unwrap();
        let compiled = compile_program(&program);
        let (done, total) = compiled.coverage();
        assert_eq!(done, total, "uncompiled rules in a shipped program");
    }
}

/// Regression: a *later* argument containing a host call that mutates
/// a variable must not affect the value an *earlier* argument already
/// captured — the interpreter snapshots each argument at its
/// evaluation point, and the VM must too (slot operands get
/// evaluation-point `CopySlot` snapshots when a later argument can
/// mutate).
const MUTATING_ARGS: &str = r#"
    transform t from In[n] to Out[n] {
        to (Out o) from (In a) {
            let x = 1;
            o[0] = Probe(o, x, Bump(x));
            o[1] = x;
            o[2] = inner(x, Bump(x));
        }
    }
    transform inner from P, Q to R {
        to (R r) from (P p, Q q) { r = p * 1000 + q; }
    }
"#;

fn mutating_hosts(interp: &mut Interpreter) {
    // Bump(v): overwrites its first argument with 100, returns 7.
    interp.register_host_fn(
        "Bump",
        Box::new(|first, _rest| {
            *first = Value::Num(100.0);
            Ok(Value::Num(7.0))
        }),
    );
    // Probe(o, x, y): returns x (what the caller captured for x).
    interp.register_host_fn("Probe", Box::new(|_first, rest| Ok(rest[0].clone())));
}

#[test]
fn argument_snapshots_survive_mutating_later_arguments() {
    let program = parse_program(MUTATING_ARGS).unwrap();
    let schema = petabricks::lang::extract_schema(&program, "t");
    let config = schema.default_config();
    let inputs: HashMap<String, Value> = [("In".to_string(), Value::Arr1(vec![0.0; 4]))].into();
    assert_identical(
        MUTATING_ARGS,
        "t",
        &schema,
        &config,
        &inputs,
        4,
        0,
        &mutating_hosts,
    );

    // And pin the interpreter-defined ground truth explicitly:
    // Probe sees x = 1 (captured before Bump runs), x itself ends at
    // 100, and inner receives p = 100 (x after the first statement's
    // Bump) captured before the second Bump.
    let mut vm = Interpreter::new_compiled(program);
    mutating_hosts(&mut vm);
    let mut ctx = ExecCtx::new(&schema, &config, 4, 0);
    let out = vm.run("t", &inputs, &mut ctx).unwrap();
    assert_eq!(out["Out"], Value::Arr1(vec![1.0, 100.0, 100_007.0, 0.0]));
}

// ---- randomized straight-line bodies -----------------------------------
// The generator lives in `tests/common/mod.rs`, shared with the
// `analysis` suite so every fuzzed program is also run through the
// verifier.

use common::gen_straight_line_program;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random straight-line rule bodies: optimized execution (every
    /// level) is pinned to unoptimized and interpreted execution —
    /// outputs, cost, and RNG draws.
    #[test]
    fn random_straight_line_bodies_are_bit_identical(
        seed in 0u64..10_000,
        n_stmts in 1usize..12,
    ) {
        let src = gen_straight_line_program(seed, n_stmts);
        let program = parse_program(&src).unwrap_or_else(|e| panic!("generated program parses: {e:?}\n{src}"));
        let schema = petabricks::lang::extract_schema(&program, "t");
        let config = schema.default_config();
        let inputs: HashMap<String, Value> = [(
            "In".to_string(),
            Value::Arr1(vec![0.25, -1.5, 3.0, 0.0]),
        )]
        .into();
        assert_identical(&src, "t", &schema, &config, &inputs, 4, seed, &no_hosts);
    }
}
